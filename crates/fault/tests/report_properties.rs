//! Property tests for the serde-free result serialization: arbitrary
//! `RunResult`s and `SuiteReport`s — non-finite floats included — round-trip
//! bit-exactly through the ckpt typed byte format that results cross the
//! serving wire in.

use aibench::runner::RunResult;
use aibench_fault::{Outcome, SuiteEntry, SuiteReport, TrainFault};
use proptest::prelude::*;

/// A fault whose variant and payload are fully determined by the sampled
/// inputs; `bits` doubles as the float payload so NaN and infinity patterns
/// get exercised.
fn fault_from(variant: usize, epoch: usize, bits: u64) -> TrainFault {
    let f32p = f32::from_bits(bits as u32);
    let f64p = f64::from_bits(bits);
    match variant % 12 {
        0 => TrainFault::NonFiniteLoss { epoch, loss: f32p },
        1 => TrainFault::LossSpike {
            epoch,
            loss: f32p,
            baseline: f32::from_bits((bits >> 32) as u32),
        },
        2 => TrainFault::NonFiniteParam {
            epoch,
            param: format!("w{bits}"),
        },
        3 => TrainFault::ExplodingGradNorm {
            epoch,
            norm: f32p,
            limit: 1e8,
        },
        4 => TrainFault::KernelPanic {
            epoch,
            message: format!("boom {bits}"),
        },
        5 => TrainFault::CheckpointIo {
            epoch,
            error: format!("disk {bits}"),
        },
        6 => TrainFault::StalledProgress {
            epoch,
            window: variant + 1,
            best: f64p,
        },
        7 => TrainFault::BudgetExhausted {
            executed: epoch,
            budget: epoch.saturating_sub(1),
        },
        8 => TrainFault::StragglerDelay {
            epoch,
            worker: variant as u32,
            ticks: bits,
        },
        9 => TrainFault::WorkerDropped {
            epoch,
            worker: variant as u32,
        },
        10 => TrainFault::CorruptGradShard {
            epoch,
            worker: variant as u32,
        },
        _ => TrainFault::LostContribution {
            epoch,
            worker: variant as u32,
        },
    }
}

fn outcome_from(variant: usize, epoch: usize, bits: u64) -> Outcome {
    match variant % 4 {
        0 => Outcome::Converged,
        1 => Outcome::Recovered {
            attempts: variant + 1,
        },
        2 => Outcome::MissedTarget,
        _ => Outcome::Quarantined {
            fault: fault_from(variant / 4, epoch, bits),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Any run result — arbitrary trace lengths and arbitrary f32/f64 bit
    // patterns — survives to_state/from_state with every float bit intact.
    #[test]
    fn run_result_round_trips_bit_exact(
        seed in 0u64..u64::MAX,
        epochs in 0usize..40,
        converged_at in 0usize..40,
        loss_bits in prop::collection::vec(0u32..u32::MAX, 0..12),
        quality_bits in prop::collection::vec(0u64..u64::MAX, 0..12),
        resumed in 0usize..5,
    ) {
        let result = RunResult {
            code: format!("DC-AI-C{}", seed % 17 + 1),
            seed,
            epochs_run: epochs,
            epochs_to_target: (converged_at < epochs).then_some(converged_at + 1),
            quality_trace: quality_bits
                .iter()
                .enumerate()
                .map(|(i, &b)| (i + 1, f64::from_bits(b)))
                .collect(),
            loss_trace: loss_bits.iter().map(|&b| f32::from_bits(b)).collect(),
            final_quality: f64::from_bits(quality_bits.first().copied().unwrap_or(0)),
            wall_seconds: epochs as f64 * 0.25,
            resumed_from: (resumed > 0).then_some(resumed),
        };
        let back = RunResult::from_state(&result.to_state()).unwrap();
        prop_assert!(back.deterministic_eq(&result));
        // The fields deterministic_eq deliberately ignores must still
        // round-trip exactly.
        prop_assert_eq!(back.wall_seconds.to_bits(), result.wall_seconds.to_bits());
        prop_assert_eq!(back.resumed_from, result.resumed_from);
    }

    // Any suite report — every outcome and fault variant reachable, NaN
    // payloads included — round-trips through its snapshot container, and
    // re-encoding reproduces the exact bytes (deterministic encoding).
    #[test]
    fn suite_report_round_trips_bit_exact(
        variants in prop::collection::vec(0usize..48, 0..8),
        bit_seed in 0u64..u64::MAX,
    ) {
        let entries: Vec<SuiteEntry> = variants
            .iter()
            .enumerate()
            .map(|(i, &variant)| {
                let epoch = variant % 59 + 1;
                let bits = bit_seed.wrapping_mul(i as u64 + 1).rotate_left(variant as u32);
                SuiteEntry {
                code: format!("DC-AI-C{}", i + 1),
                outcome: outcome_from(variant, epoch, bits),
                recoveries: variant % 9,
                faults: variant % 5,
                epochs_run: epoch,
                epochs_executed: epoch + variant % 7,
                final_quality: f64::from_bits(bits),
                wall_seconds: epoch as f64 * 0.125,
                }
            })
            .collect();
        let report = SuiteReport { entries };
        let bytes = report.to_bytes();
        let back = SuiteReport::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.entries.len(), report.entries.len());
        for (a, b) in back.entries.iter().zip(&report.entries) {
            prop_assert_eq!(&a.code, &b.code);
            prop_assert_eq!(a.outcome.signature(), b.outcome.signature());
            prop_assert_eq!(a.recoveries, b.recoveries);
            prop_assert_eq!(a.faults, b.faults);
            prop_assert_eq!(a.epochs_run, b.epochs_run);
            prop_assert_eq!(a.epochs_executed, b.epochs_executed);
            prop_assert_eq!(a.final_quality.to_bits(), b.final_quality.to_bits());
            prop_assert_eq!(a.wall_seconds.to_bits(), b.wall_seconds.to_bits());
        }
        prop_assert_eq!(back.to_bytes(), bytes);
    }

    // Corrupting the container is detected, never decoded into a report.
    #[test]
    fn flipped_byte_never_decodes(flip in 0usize..256, xor in 1u32..256) {
        let report = SuiteReport {
            entries: vec![SuiteEntry {
                code: "DC-AI-C15".to_string(),
                outcome: Outcome::Quarantined {
                    fault: TrainFault::NonFiniteLoss { epoch: 3, loss: f32::NAN },
                },
                recoveries: 2,
                faults: 3,
                epochs_run: 7,
                epochs_executed: 11,
                final_quality: 0.5,
                wall_seconds: 1.0,
            }],
        };
        let mut bytes = report.to_bytes();
        let idx = flip % bytes.len();
        bytes[idx] ^= xor as u8;
        prop_assert!(SuiteReport::from_bytes(&bytes).is_err());
    }
}

//! The TCP transport: a single-threaded, nonblocking listener driving the
//! deterministic [`ServerCore`] — accept submissions, step the scheduler,
//! stream progress and final results back to each client.
//!
//! The transport is deliberately thin: every scheduling decision lives in
//! the core, and the in-process load harness drives the identical core, so
//! TCP adds delivery without adding nondeterminism to the schedule.
//!
//! # Leases and reconnect
//!
//! A session's client connection is a *lease*, not a lifeline. Every
//! message streamed to a client is also buffered in the session's history;
//! if the socket dies (write failure, disconnect, timeout) only the stream
//! is detached — the session keeps running and its final record is
//! buffered. A client reconnecting with [`ClientMsg::Reconnect`] (or
//! retransmitting its idempotent submit) redeems the lease: the server
//! replays every buffered event past the client's last-seen seq and the
//! final record if the session already finished. One dead socket therefore
//! never perturbs the scheduler or any other client's bits.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use aibench::registry::Registry;

use crate::server::{ServeConfig, ServerCore};
use crate::wire::{read_frame, write_frame, ClientMsg, ServerMsg, MAX_FRAME};

/// One accepted session's delivery state: the attached stream (if any)
/// and the append-only history a reconnecting client replays from.
struct Lease {
    stream: Option<TcpStream>,
    /// Every message sent (or that should have been sent) in order:
    /// progress events, then the final record.
    history: Vec<ServerMsg>,
    /// Whether the final record is buffered in `history`.
    done: bool,
    /// Whether the final record reached a client successfully.
    delivered: bool,
    /// Idempotency key of the submit (`0`: no reconnect possible).
    submission: u64,
}

/// Serves until `expected_sessions` submissions have been accepted and
/// every accepted session has finished, then returns the number served.
/// Binds to `addr` (use port 0 to let the OS pick; the bound address is
/// reported through `on_bound`).
pub fn serve_sessions(
    registry: &Registry,
    config: ServeConfig,
    addr: &str,
    expected_sessions: usize,
    on_bound: impl FnOnce(std::net::SocketAddr),
) -> std::io::Result<usize> {
    serve_sessions_with(
        registry,
        config,
        addr,
        expected_sessions,
        Duration::ZERO,
        on_bound,
    )
}

/// [`serve_sessions`] with a lease-redemption window: after the last
/// session finishes, the listener stays up for `linger` so disconnected
/// clients can reconnect and collect their buffered results. Returns as
/// soon as every redeemable lease is delivered.
pub fn serve_sessions_with(
    registry: &Registry,
    config: ServeConfig,
    addr: &str,
    expected_sessions: usize,
    linger: Duration,
    on_bound: impl FnOnce(std::net::SocketAddr),
) -> std::io::Result<usize> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    on_bound(listener.local_addr()?);

    let mut core = ServerCore::new(registry, config);
    let mut leases: BTreeMap<u64, Lease> = BTreeMap::new();
    let mut accepted = 0usize;
    let mut served = 0usize;
    let mut linger_deadline: Option<Instant> = None;

    loop {
        // Accept any waiting connections: new submissions while capacity
        // remains, reconnects at any time.
        loop {
            match listener.accept() {
                Ok((mut stream, _)) => {
                    stream.set_nodelay(true).ok();
                    // A stalled or dead handshake drops this connection
                    // only — never the serve loop.
                    let Ok(Some(payload)) = read_frame_blocking(&mut stream) else {
                        continue;
                    };
                    match ClientMsg::from_bytes(&payload) {
                        Ok(ClientMsg::Submit(request)) => {
                            if accepted >= expected_sessions
                                && core
                                    .lookup_submission(&request.tenant, request.submission)
                                    .is_none()
                            {
                                // Past capacity and not a retransmit.
                                let _ = write_frame(
                                    &mut stream,
                                    &ServerMsg::Rejected {
                                        reason: "server is draining".to_string(),
                                        retryable: false,
                                    }
                                    .to_bytes(),
                                );
                                continue;
                            }
                            let submission = request.submission;
                            match core.submit(request) {
                                Ok(session) => {
                                    if let Some(lease) = leases.get_mut(&session) {
                                        // Idempotent retransmit: redeem the
                                        // existing lease from the start.
                                        attach(lease, stream, session, 0);
                                    } else {
                                        accepted += 1;
                                        let mut lease = Lease {
                                            stream: None,
                                            history: Vec::new(),
                                            done: false,
                                            delivered: false,
                                            submission,
                                        };
                                        attach(&mut lease, stream, session, 0);
                                        leases.insert(session, lease);
                                    }
                                }
                                Err(rejection) => {
                                    if !rejection.retryable {
                                        // A permanently rejected submission
                                        // still counts toward the expected
                                        // total, or the server would wait
                                        // forever for a session that will
                                        // never exist. Shed (retryable)
                                        // submissions will come back.
                                        accepted += 1;
                                        served += 1;
                                    }
                                    let _ = write_frame(
                                        &mut stream,
                                        &ServerMsg::Rejected {
                                            reason: rejection.reason,
                                            retryable: rejection.retryable,
                                        }
                                        .to_bytes(),
                                    );
                                }
                            }
                        }
                        Ok(ClientMsg::Reconnect {
                            tenant,
                            submission,
                            after_seq,
                        }) => {
                            let session = core.lookup_submission(&tenant, submission);
                            match session.and_then(|s| leases.get_mut(&s).map(|l| (s, l))) {
                                Some((session, lease)) => {
                                    attach(lease, stream, session, after_seq);
                                }
                                None => {
                                    let _ = write_frame(
                                        &mut stream,
                                        &ServerMsg::Rejected {
                                            reason: format!(
                                                "no lease for tenant `{tenant}` \
                                                 submission {submission}"
                                            ),
                                            retryable: false,
                                        }
                                        .to_bytes(),
                                    );
                                }
                            }
                        }
                        Err(e) => {
                            let _ = write_frame(
                                &mut stream,
                                &ServerMsg::Rejected {
                                    reason: format!("malformed submission: {e}"),
                                    retryable: false,
                                }
                                .to_bytes(),
                            );
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) => return Err(e),
            }
        }

        if served >= expected_sessions {
            // Everything ran; stay up only while an undelivered result
            // can still be redeemed within the linger window.
            let outstanding = leases
                .values()
                .any(|l| l.done && !l.delivered && l.submission != 0);
            let deadline = *linger_deadline.get_or_insert_with(|| Instant::now() + linger);
            if !outstanding || Instant::now() >= deadline {
                return Ok(served);
            }
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }

        if core.is_idle() {
            // Nothing to run yet; don't spin the accept loop hot.
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }
        core.step();
        for event in core.drain_events() {
            if let Some(lease) = leases.get_mut(&event.session) {
                let msg = ServerMsg::Progress(event);
                send(lease, &msg);
                lease.history.push(msg);
            }
        }
        for done in core.drain_finished() {
            served += 1;
            if let Some(lease) = leases.get_mut(&done.session) {
                let msg = ServerMsg::Done(done);
                if send(lease, &msg) {
                    lease.delivered = true;
                }
                lease.done = true;
                lease.history.push(msg);
            }
        }
    }
}

/// Writes one message to a lease's attached stream, detaching the stream
/// on failure (the lease and its history survive). Returns whether the
/// write succeeded.
fn send(lease: &mut Lease, msg: &ServerMsg) -> bool {
    let Some(stream) = &mut lease.stream else {
        return false;
    };
    if write_frame(stream, &msg.to_bytes()).is_err() {
        lease.stream = None;
        return false;
    }
    true
}

/// Attaches a (re)connecting stream to a lease: acknowledges with
/// `Accepted`, replays every buffered event past `after_seq`, and — if
/// the session already finished — the final record.
fn attach(lease: &mut Lease, stream: TcpStream, session: u64, after_seq: u64) {
    lease.stream = Some(stream);
    if !send(lease, &ServerMsg::Accepted { session }) {
        return;
    }
    let replay: Vec<ServerMsg> = lease
        .history
        .iter()
        .filter(|m| match m {
            ServerMsg::Progress(p) => p.seq > after_seq,
            ServerMsg::Done(_) => true,
            _ => false,
        })
        .cloned()
        .collect();
    for msg in replay {
        let was_done = matches!(msg, ServerMsg::Done(_));
        if !send(lease, &msg) {
            return;
        }
        if was_done {
            lease.delivered = true;
        }
    }
    if let Some(stream) = &mut lease.stream {
        let _ = stream.flush();
    }
}

/// Reads one frame from a freshly accepted connection, tolerating short
/// reads, `Interrupted`, and frames split across read-timeout boundaries:
/// the 5-second patience window restarts whenever bytes arrive, so a slow
/// client loses its connection only after 5s of true silence — never
/// because a frame straddled a timeout tick.
fn read_frame_blocking(stream: &mut TcpStream) -> std::io::Result<Option<Vec<u8>>> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut len_bytes = [0u8; 4];
    let got = read_patient(stream, &mut len_bytes)?;
    if got == 0 {
        return Ok(None);
    }
    if got < len_bytes.len() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed inside a frame length prefix",
        ));
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    let got = read_patient(stream, &mut payload)?;
    if got < payload.len() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            format!("connection closed {got} byte(s) into a {len}-byte frame"),
        ));
    }
    Ok(Some(payload))
}

/// Fills `buf` from a stream with a short read timeout, restarting the
/// 5-second patience window on every byte of progress. Returns bytes read
/// (short only on clean EOF); times out only after 5s with no progress.
fn read_patient(stream: &mut TcpStream, buf: &mut [u8]) -> std::io::Result<usize> {
    let patience = Duration::from_secs(5);
    let mut last_progress = Instant::now();
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => {
                filled += n;
                last_progress = Instant::now();
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if last_progress.elapsed() >= patience {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "no bytes for 5s mid-frame",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// Client helper: submits `request` to `addr`, then blocks collecting
/// events until the final record arrives. Returns the streamed progress
/// events and the final [`DoneMsg`](crate::wire::DoneMsg).
pub fn submit_and_wait(
    addr: std::net::SocketAddr,
    request: crate::wire::RunRequest,
) -> std::io::Result<(Vec<crate::wire::ProgressEvent>, crate::wire::DoneMsg)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    write_frame(&mut stream, &ClientMsg::Submit(request).to_bytes())?;
    collect_stream(&mut stream, 0)
}

/// Client helper: redeems the lease of an earlier submission after a
/// dropped connection, resuming the event stream past `after_seq`.
pub fn reconnect_and_wait(
    addr: std::net::SocketAddr,
    tenant: &str,
    submission: u64,
    after_seq: u64,
) -> std::io::Result<(Vec<crate::wire::ProgressEvent>, crate::wire::DoneMsg)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    write_frame(
        &mut stream,
        &ClientMsg::Reconnect {
            tenant: tenant.to_string(),
            submission,
            after_seq,
        }
        .to_bytes(),
    )?;
    collect_stream(&mut stream, after_seq)
}

/// Client helper: [`submit_and_wait`] with retry under exponential
/// backoff. Connection failures and retryable (overload) rejections back
/// off and retry up to `max_attempts` times; a dropped connection
/// mid-stream reconnects and resumes when the request carries a non-zero
/// idempotency key. Returns the deduplicated event stream and the final
/// record.
pub fn submit_with_retry(
    addr: std::net::SocketAddr,
    request: crate::wire::RunRequest,
    max_attempts: usize,
) -> std::io::Result<(Vec<crate::wire::ProgressEvent>, crate::wire::DoneMsg)> {
    let mut backoff = Duration::from_millis(2);
    let mut events: Vec<crate::wire::ProgressEvent> = Vec::new();
    let mut last_err = None;
    for attempt in 0..max_attempts.max(1) {
        if attempt > 0 {
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(Duration::from_millis(500));
        }
        let after_seq = events.last().map_or(0, |e| e.seq);
        let outcome = if after_seq > 0 && request.submission != 0 {
            reconnect_and_wait(addr, &request.tenant, request.submission, after_seq)
        } else {
            submit_and_wait(addr, request.clone())
        };
        match outcome {
            Ok((mut tail, done)) => {
                events.append(&mut tail);
                return Ok((events, done));
            }
            Err(e) if e.kind() == std::io::ErrorKind::InvalidInput => {
                // Non-retryable rejection: surface immediately.
                if !e.to_string().starts_with("overloaded") {
                    return Err(e);
                }
                last_err = Some(e);
            }
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err
        .unwrap_or_else(|| std::io::Error::new(std::io::ErrorKind::TimedOut, "no attempts made")))
}

/// Drains one server stream until the final record, deduplicating by seq
/// (frames at or below `after_seq` were already seen).
fn collect_stream(
    stream: &mut TcpStream,
    after_seq: u64,
) -> std::io::Result<(Vec<crate::wire::ProgressEvent>, crate::wire::DoneMsg)> {
    drain_stream(stream, after_seq)
}

/// The transport-agnostic body of [`submit_and_wait`]'s receive loop:
/// reads framed [`ServerMsg`]s from any byte stream until the final
/// record, dropping duplicated or replayed progress frames by seq
/// (anything at or below `after_seq` was already seen). Exposed so
/// adversarial-wire property tests can drive the exact dedupe path the
/// TCP client runs, over in-memory bytes.
pub fn drain_stream(
    stream: &mut impl Read,
    after_seq: u64,
) -> std::io::Result<(Vec<crate::wire::ProgressEvent>, crate::wire::DoneMsg)> {
    let mut events = Vec::new();
    let mut last_seq = after_seq;
    loop {
        let Some(payload) = read_frame(stream)? else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed before the final record",
            ));
        };
        let msg = ServerMsg::from_bytes(&payload)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        match msg {
            ServerMsg::Accepted { .. } => {}
            ServerMsg::Rejected { reason, .. } => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    reason,
                ))
            }
            ServerMsg::Progress(event) => {
                // Duplicated or replayed frames repeat a seq: drop them.
                if event.seq > last_seq {
                    last_seq = event.seq;
                    events.push(event);
                }
            }
            ServerMsg::Done(done) => return Ok((events, done)),
        }
    }
}

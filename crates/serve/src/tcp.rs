//! The TCP transport: a single-threaded, nonblocking listener driving the
//! deterministic [`ServerCore`] — accept submissions, step the scheduler,
//! stream progress and final results back to each client.
//!
//! The transport is deliberately thin: every scheduling decision lives in
//! the core, and the in-process load harness drives the identical core, so
//! TCP adds delivery without adding nondeterminism to the schedule.

use std::collections::BTreeMap;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use aibench::registry::Registry;

use crate::server::{ServeConfig, ServerCore};
use crate::wire::{read_frame, write_frame, ClientMsg, ServerMsg};

/// Serves until `expected_sessions` submissions have been accepted and
/// every accepted session has finished, then returns the number served.
/// Binds to `addr` (use port 0 to let the OS pick; the bound address is
/// reported through `on_bound`).
pub fn serve_sessions(
    registry: &Registry,
    config: ServeConfig,
    addr: &str,
    expected_sessions: usize,
    on_bound: impl FnOnce(std::net::SocketAddr),
) -> std::io::Result<usize> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    on_bound(listener.local_addr()?);

    let mut core = ServerCore::new(registry, config);
    let mut clients: BTreeMap<u64, TcpStream> = BTreeMap::new();
    let mut accepted = 0usize;
    let mut served = 0usize;

    while served < expected_sessions {
        // Accept any waiting connections; each carries one submission.
        while accepted < expected_sessions {
            match listener.accept() {
                Ok((mut stream, _)) => {
                    stream.set_nodelay(true).ok();
                    let Some(payload) = read_frame_blocking(&mut stream)? else {
                        continue; // client connected and left
                    };
                    let reply = match ClientMsg::from_bytes(&payload) {
                        Ok(ClientMsg::Submit(request)) => match core.submit(request) {
                            Ok(session) => {
                                clients.insert(session, stream.try_clone()?);
                                accepted += 1;
                                ServerMsg::Accepted { session }
                            }
                            Err(rejection) => {
                                // A rejected submission still counts toward
                                // the expected total, or the server would
                                // wait forever for a session that will
                                // never exist.
                                accepted += 1;
                                served += 1;
                                ServerMsg::Rejected {
                                    reason: rejection.reason,
                                }
                            }
                        },
                        Err(e) => ServerMsg::Rejected {
                            reason: format!("malformed submission: {e}"),
                        },
                    };
                    write_frame(&mut stream, &reply.to_bytes())?;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) => return Err(e),
            }
        }

        if core.is_idle() {
            if accepted < expected_sessions {
                // Nothing to run yet; don't spin the accept loop hot.
                std::thread::sleep(Duration::from_millis(1));
            }
            continue;
        }
        core.step();
        for event in core.drain_events() {
            if let Some(stream) = clients.get_mut(&event.session) {
                let _ = write_frame(stream, &ServerMsg::Progress(event.clone()).to_bytes());
            }
        }
        for done in core.drain_finished() {
            if let Some(mut stream) = clients.remove(&done.session) {
                let _ = write_frame(&mut stream, &ServerMsg::Done(done.clone()).to_bytes());
                let _ = stream.flush();
            }
            served += 1;
        }
    }
    Ok(served)
}

/// Reads one frame from a stream that may be mid-handshake: retries
/// `WouldBlock` briefly (the socket inherits the listener's nonblocking
/// flag on some platforms).
fn read_frame_blocking(stream: &mut TcpStream) -> std::io::Result<Option<Vec<u8>>> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    read_frame(stream)
}

/// Client helper: submits `request` to `addr`, then blocks collecting
/// events until the final record arrives. Returns the streamed progress
/// events and the final [`DoneMsg`](crate::wire::DoneMsg).
pub fn submit_and_wait(
    addr: std::net::SocketAddr,
    request: crate::wire::RunRequest,
) -> std::io::Result<(Vec<crate::wire::ProgressEvent>, crate::wire::DoneMsg)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    write_frame(&mut stream, &ClientMsg::Submit(request).to_bytes())?;
    let mut events = Vec::new();
    loop {
        let Some(payload) = read_frame(&mut stream)? else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed before the final record",
            ));
        };
        let msg = ServerMsg::from_bytes(&payload)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        match msg {
            ServerMsg::Accepted { .. } => {}
            ServerMsg::Rejected { reason } => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    reason,
                ))
            }
            ServerMsg::Progress(event) => events.push(event),
            ServerMsg::Done(done) => return Ok((events, done)),
        }
    }
}

//! `aibench-serve`: multi-tenant benchmark-as-a-service over the AIBench
//! training suite.
//!
//! The server accepts benchmark-run requests from many tenants, admits
//! them against a bounded worker budget with fair-share queueing, preempts
//! running sessions for higher-priority arrivals by parking them through
//! `aibench-ckpt` snapshots, and supervises every session with the
//! `aibench-fault` sentinels so one tenant's poisoned run can never take
//! a neighbor down.
//!
//! Three layers:
//!
//! * [`wire`] — the serde-free wire protocol: length-prefixed frames whose
//!   payloads are CRC-checked ckpt snapshot containers; results cross the
//!   wire with every float bit intact.
//! * [`server`] — the deterministic, transport-agnostic core: admission,
//!   fair share, preemption, and the schedule log that witnesses all of it
//!   ([`server::ServeReport::schedule_signature`]).
//! * [`tcp`] — a thin TCP listener over the core, plus a blocking client.
//!
//! # Determinism contract
//!
//! A fixed request trace replayed through [`server::run_trace`] produces
//! the identical admission/preemption schedule and bitwise-identical
//! per-session results at any `AIBENCH_THREADS` — scheduling decisions are
//! functions of (tick, submission order, priority, accumulated service),
//! never wall-clock time. A preempted-then-resumed session is bitwise
//! identical to one that ran uninterrupted.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod server;
pub mod tcp;
pub mod wire;

pub use server::{
    run_trace, schedule_signature, Quirks, Rejection, SchedAction, SchedEvent, ServeConfig,
    ServeReport, ServerCore, SessionResult,
};
pub use tcp::{
    drain_stream, reconnect_and_wait, serve_sessions, serve_sessions_with, submit_and_wait,
    submit_with_retry,
};
pub use wire::{ClientMsg, DoneMsg, Event, ProgressEvent, RunRequest, ServerMsg};

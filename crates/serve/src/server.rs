//! The serving core: admission control against a bounded worker budget,
//! fair-share queueing across tenants, and priority preemption via park
//! snapshots.
//!
//! # Scheduling policy
//!
//! The server advances in discrete *ticks*. Each tick it (1) admits and
//! preempts until the schedule is stable, then (2) spends one supervised
//! epoch slot on every running session, in ascending session id.
//!
//! Admission picks the queued session with the highest priority; ties go
//! to the tenant with the least accumulated service (epoch slots consumed
//! so far), then to the earliest submission. A queued session whose
//! priority exceeds a running session's preempts it: the victim (lowest
//! priority, youngest submission last) is parked — snapshot saved through
//! `aibench-ckpt`, trainer dropped — and re-queued; when re-admitted it
//! resumes from that snapshot bitwise identically.
//!
//! # Determinism
//!
//! Every scheduling decision is a function of (tick, submission order,
//! priorities, accumulated service) — never wall-clock time or thread
//! timing. A fixed request trace therefore produces the identical
//! admission/preemption schedule ([`ServeReport::schedule_signature`])
//! and bitwise-identical per-session results at any `AIBENCH_THREADS`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use aibench::registry::Registry;
use aibench::runner::{RunConfig, RunResult};
use aibench_ckpt::{CheckpointSink, MemorySink};
use aibench_fault::{SupervisedSession, SupervisorConfig, Tick};

use crate::wire::{DoneMsg, Event, ProgressEvent, RunRequest};

/// Seeded scheduler defects for `aibench-check --serve`. All off in
/// production configurations; each quirk reintroduces one scheduler bug
/// the serve lints must catch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Quirks {
    /// Ignore accumulated tenant service when breaking admission ties —
    /// plain FIFO, which lets one flooding tenant starve the rest.
    pub starve_fifo: bool,
    /// Drop the park snapshot right after parking a preemption victim, so
    /// the victim silently restarts from older state.
    pub lose_park_snapshot: bool,
    /// Admit this many sessions beyond the worker budget.
    pub overcommit_by: usize,
    /// Forget a disconnected client's buffered events and final result,
    /// so a reconnecting client cannot redeem its lease.
    pub drop_lease: bool,
    /// Ignore idempotency keys: every submit creates a fresh session even
    /// when `(tenant, submission)` was accepted before.
    pub duplicate_submission: bool,
    /// Ignore `max_queue`: admit submissions into an unbounded queue
    /// instead of shedding load.
    pub ignore_queue_bound: bool,
}

/// Server configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker budget: sessions running concurrently (admitted, not parked).
    pub budget: usize,
    /// Admission-queue bound: a submit arriving with this many sessions
    /// already queued is shed with a retryable `overloaded` rejection.
    /// `usize::MAX` (the default) never sheds.
    pub max_queue: usize,
    /// Supervision applied to every session.
    pub sup: SupervisorConfig,
    /// Seeded defects (all off by default).
    pub quirks: Quirks,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            budget: 2,
            max_queue: usize::MAX,
            sup: SupervisorConfig::default(),
            quirks: Quirks::default(),
        }
    }
}

/// One scheduling decision, stamped with its tick — the serve determinism
/// witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedAction {
    /// The request entered the queue.
    Arrive,
    /// The request was rejected at submission.
    Reject {
        /// Why.
        reason: String,
    },
    /// The session was admitted to a worker slot for the first time.
    Admit,
    /// The session was preempted and parked at this epoch.
    Park {
        /// Epoch of the park snapshot.
        at_epoch: usize,
    },
    /// The session was re-admitted, resuming from this epoch (`None`: no
    /// snapshot survived; restarted from scratch).
    Resume {
        /// Epoch resumed from.
        from_epoch: Option<usize>,
    },
    /// The session finished with this outcome signature.
    Finish {
        /// Outcome signature.
        outcome: String,
    },
}

impl SchedAction {
    fn signature(&self) -> String {
        match self {
            SchedAction::Arrive => "arrive".to_string(),
            SchedAction::Reject { .. } => "reject".to_string(),
            SchedAction::Admit => "admit".to_string(),
            SchedAction::Park { at_epoch } => format!("park@{at_epoch}"),
            SchedAction::Resume { from_epoch } => match from_epoch {
                Some(e) => format!("resume@{e}"),
                None => "resume@scratch".to_string(),
            },
            SchedAction::Finish { outcome } => format!("finish:{outcome}"),
        }
    }
}

/// One entry of the schedule log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedEvent {
    /// Scheduler tick of the decision.
    pub tick: u64,
    /// Session the decision applies to.
    pub session: u64,
    /// The decision.
    pub action: SchedAction,
}

/// Renders a schedule log as a compact deterministic signature,
/// `t0:s1:arrive;t0:s1:admit;…`.
pub fn schedule_signature(log: &[SchedEvent]) -> String {
    let mut out = String::new();
    for (i, e) in log.iter().enumerate() {
        if i > 0 {
            out.push(';');
        }
        let _ = write!(out, "t{}:s{}:{}", e.tick, e.session, e.action.signature());
    }
    out
}

/// Why a submission was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejection {
    /// Human-readable reason (also recorded in the schedule log).
    pub reason: String,
    /// Whether retrying the same submission later can succeed (`true`
    /// for load shedding, `false` for validation errors).
    pub retryable: bool,
}

enum SessionState<'a> {
    /// Waiting for first admission; the trainer is not built yet, so a
    /// deep queue costs queue entries, not model memory.
    Queued,
    /// Admitted at least once (running if listed in `running`, otherwise
    /// parked awaiting re-admission). The sink is boxed so each session's
    /// store can be picked at admission time (in-memory by default, a
    /// chaos-wrapped sink under injection).
    Active(Box<SupervisedSession<'a, Box<dyn CheckpointSink>>>),
}

struct Served<'a> {
    request: RunRequest,
    arrived: u64,
    first_admit: Option<u64>,
    state: SessionState<'a>,
    emitted_faults: usize,
    /// Last progress seq handed out for this session (1-based stream).
    seq: u64,
    started: Instant,
}

/// Builds a session's checkpoint store at admission time.
type SinkFactory<'a> = Box<dyn FnMut(u64) -> Box<dyn CheckpointSink> + 'a>;

/// The deterministic serving core, transport-agnostic: `submit` requests,
/// `step` the scheduler, drain `events` and finished sessions. The TCP
/// listener and the in-process load harness both drive this same core.
pub struct ServerCore<'a> {
    registry: &'a Registry,
    config: ServeConfig,
    tick: u64,
    next_session: u64,
    sessions: BTreeMap<u64, Served<'a>>,
    /// Queued session ids (original submission order).
    pending: Vec<u64>,
    /// Running session ids (kept sorted).
    running: Vec<u64>,
    /// Epoch slots consumed per tenant — the fair-share accounting.
    tenant_service: BTreeMap<String, u64>,
    /// Accepted idempotency keys: `(tenant, submission) -> session`.
    /// Entries outlive their sessions so a retransmitted submit after
    /// finish still resolves instead of re-running.
    submissions: BTreeMap<(String, u64), u64>,
    sink_factory: Option<SinkFactory<'a>>,
    schedule: Vec<SchedEvent>,
    events: Vec<ProgressEvent>,
    finished: Vec<DoneMsg>,
}

impl<'a> ServerCore<'a> {
    /// A server over `registry` with the given budget and supervision.
    pub fn new(registry: &'a Registry, config: ServeConfig) -> Self {
        ServerCore {
            registry,
            config,
            tick: 0,
            next_session: 0,
            sessions: BTreeMap::new(),
            pending: Vec::new(),
            running: Vec::new(),
            tenant_service: BTreeMap::new(),
            submissions: BTreeMap::new(),
            sink_factory: None,
            schedule: Vec::new(),
            events: Vec::new(),
            finished: Vec::new(),
        }
    }

    /// Overrides the per-session checkpoint store (default: a private
    /// in-memory sink per session). The chaos harness wraps sinks here
    /// to inject torn writes, disk-full errors, and snapshot bit rot.
    pub fn set_sink_factory(&mut self, factory: impl FnMut(u64) -> Box<dyn CheckpointSink> + 'a) {
        self.sink_factory = Some(Box::new(factory));
    }

    /// Resolves an accepted idempotency key to its session id — the
    /// lease lookup a reconnecting client's transport performs.
    pub fn lookup_submission(&self, tenant: &str, submission: u64) -> Option<u64> {
        self.submissions
            .get(&(tenant.to_string(), submission))
            .copied()
    }

    /// Submits one request at the current tick. Admission control happens
    /// on the next [`step`](ServerCore::step); validation, idempotency
    /// resolution, and load shedding happen here. A retransmitted submit
    /// (same non-zero `(tenant, submission)` key as an accepted one)
    /// returns the existing session id without consuming a new one, so
    /// retries never perturb the schedule.
    pub fn submit(&mut self, request: RunRequest) -> Result<u64, Rejection> {
        if request.submission != 0 && !self.config.quirks.duplicate_submission {
            let key = (request.tenant.clone(), request.submission);
            if let Some(&existing) = self.submissions.get(&key) {
                return Ok(existing);
            }
        }
        let id = self.next_session;
        self.next_session += 1;
        let reason = if self.registry.get(&request.code).is_none() {
            Some(format!("unknown benchmark `{}`", request.code))
        } else if request.max_epochs == 0 {
            Some("max_epochs must be positive".to_string())
        } else {
            None
        };
        if let Some(reason) = reason {
            self.schedule.push(SchedEvent {
                tick: self.tick,
                session: id,
                action: SchedAction::Reject {
                    reason: reason.clone(),
                },
            });
            return Err(Rejection {
                reason,
                retryable: false,
            });
        }
        if self.pending.len() >= self.config.max_queue && !self.config.quirks.ignore_queue_bound {
            let reason = format!(
                "overloaded: {} session(s) queued (bound {})",
                self.pending.len(),
                self.config.max_queue
            );
            self.schedule.push(SchedEvent {
                tick: self.tick,
                session: id,
                action: SchedAction::Reject {
                    reason: reason.clone(),
                },
            });
            return Err(Rejection {
                reason,
                retryable: true,
            });
        }
        self.schedule.push(SchedEvent {
            tick: self.tick,
            session: id,
            action: SchedAction::Arrive,
        });
        if request.submission != 0 {
            self.submissions
                .insert((request.tenant.clone(), request.submission), id);
        }
        self.sessions.insert(
            id,
            Served {
                request,
                arrived: self.tick,
                first_admit: None,
                state: SessionState::Queued,
                emitted_faults: 0,
                seq: 0,
                started: Instant::now(),
            },
        );
        self.pending.push(id);
        Ok(id)
    }

    /// Advances the clock one tick without scheduling or training — the
    /// chaos `TickStall` injection point. Queue waits lengthen; no
    /// session state changes.
    pub fn stall_tick(&mut self) {
        self.tick += 1;
    }

    /// Whether all submitted work has finished.
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty() && self.running.is_empty()
    }

    /// The current scheduler tick.
    pub fn tick_count(&self) -> u64 {
        self.tick
    }

    /// The schedule log so far.
    pub fn schedule_log(&self) -> &[SchedEvent] {
        &self.schedule
    }

    /// Drains progress events accumulated since the last drain.
    pub fn drain_events(&mut self) -> Vec<ProgressEvent> {
        std::mem::take(&mut self.events)
    }

    /// Drains sessions finished since the last drain.
    pub fn drain_finished(&mut self) -> Vec<DoneMsg> {
        std::mem::take(&mut self.finished)
    }

    /// The queued session the policy admits next, if any.
    fn best_pending(&self) -> Option<u64> {
        self.pending.iter().copied().min_by_key(|&id| {
            let s = &self.sessions[&id];
            let service = if self.config.quirks.starve_fifo {
                0
            } else {
                *self.tenant_service.get(&s.request.tenant).unwrap_or(&0)
            };
            // Highest priority first, then least-served tenant, then
            // submission order.
            (std::cmp::Reverse(s.request.priority), service, id)
        })
    }

    /// The running session preemption evicts first, if any: lowest
    /// priority, ties to the youngest submission.
    fn preemption_victim(&self) -> Option<u64> {
        self.running
            .iter()
            .copied()
            .min_by_key(|&id| (self.sessions[&id].request.priority, std::cmp::Reverse(id)))
    }

    fn admit(&mut self, id: u64) {
        self.pending.retain(|&p| p != id);
        self.running.push(id);
        self.running.sort_unstable();
        let tick = self.tick;
        let served = self
            .sessions
            .get_mut(&id)
            .expect("admitting unknown session");
        match &mut served.state {
            SessionState::Queued => {
                served.first_admit = Some(tick);
                let benchmark = self
                    .registry
                    .get(&served.request.code)
                    .expect("validated at submit");
                let config = RunConfig {
                    max_epochs: served.request.max_epochs,
                    eval_every: served.request.eval_every,
                    parallel: None,
                    checkpoint_every: 0,
                };
                let sink: Box<dyn CheckpointSink> = match &mut self.sink_factory {
                    Some(factory) => factory(id),
                    None => Box::new(MemorySink::new()),
                };
                served.state = SessionState::Active(Box::new(SupervisedSession::new(
                    benchmark,
                    served.request.seed,
                    config,
                    served.request.faults.clone(),
                    self.config.sup,
                    sink,
                )));
                self.schedule.push(SchedEvent {
                    tick,
                    session: id,
                    action: SchedAction::Admit,
                });
                served.seq += 1;
                self.events.push(ProgressEvent {
                    session: id,
                    seq: served.seq,
                    tick,
                    event: Event::Admitted { tick },
                });
            }
            SessionState::Active(session) => {
                let from_epoch = session.unpark();
                self.schedule.push(SchedEvent {
                    tick,
                    session: id,
                    action: SchedAction::Resume { from_epoch },
                });
                served.seq += 1;
                self.events.push(ProgressEvent {
                    session: id,
                    seq: served.seq,
                    tick,
                    event: Event::Resumed { from_epoch },
                });
            }
        }
    }

    fn park(&mut self, id: u64) {
        self.running.retain(|&r| r != id);
        let tick = self.tick;
        let lose = self.config.quirks.lose_park_snapshot;
        let served = self.sessions.get_mut(&id).expect("parking unknown session");
        let SessionState::Active(session) = &mut served.state else {
            unreachable!("only active sessions run");
        };
        let at_epoch = match session.park() {
            Ok(epoch) => epoch,
            // The park save failed (a chaos store fault). Park anyway:
            // the session resumes from the newest older rollback
            // snapshot — or scratch — and re-runs the gap, which the
            // rollback contract makes bitwise-neutral.
            Err(_) => session.park_without_snapshot(),
        };
        if lose {
            session.sink_mut().remove(at_epoch);
        }
        self.schedule.push(SchedEvent {
            tick,
            session: id,
            action: SchedAction::Park { at_epoch },
        });
        served.seq += 1;
        self.events.push(ProgressEvent {
            session: id,
            seq: served.seq,
            tick,
            event: Event::Parked { at_epoch },
        });
        // Re-queue preserving original submission order, so fair-share
        // and FIFO tie-breaks see the session's true age.
        self.pending.push(id);
        self.pending.sort_unstable();
    }

    /// Admission + preemption to a fixed point for the current tick.
    fn schedule_tick(&mut self) {
        let capacity = self.config.budget + self.config.quirks.overcommit_by;
        while let Some(best) = self.best_pending() {
            if self.running.len() < capacity {
                self.admit(best);
                continue;
            }
            let Some(victim) = self.preemption_victim() else {
                break;
            };
            let best_priority = self.sessions[&best].request.priority;
            let victim_priority = self.sessions[&victim].request.priority;
            if best_priority > victim_priority {
                self.park(victim);
                self.admit(best);
                continue;
            }
            break;
        }
    }

    /// Advances the server one tick: schedules, then spends one supervised
    /// epoch slot on every running session (ascending id).
    pub fn step(&mut self) {
        self.schedule_tick();
        let ambient_threads = aibench_parallel::threads();
        let ids: Vec<u64> = self.running.clone();
        for id in ids {
            let tick = self.tick;
            let served = self.sessions.get_mut(&id).expect("running unknown session");
            let SessionState::Active(session) = &mut served.state else {
                unreachable!("only active sessions run");
            };
            let outcome = session.tick();
            if session.degraded_serial() {
                // A degraded session pins itself to one thread each tick;
                // restore the ambient configuration so its degradation
                // never leaks into the sessions ticked after it.
                aibench_parallel::set_threads(ambient_threads);
            }
            // Stream any faults the tick surfaced before the tick's own
            // event, preserving detection order.
            for fault in &session.faults()[served.emitted_faults..] {
                served.seq += 1;
                self.events.push(ProgressEvent {
                    session: id,
                    seq: served.seq,
                    tick,
                    event: Event::Fault {
                        signature: fault.signature(),
                    },
                });
            }
            served.emitted_faults = session.faults().len();
            self.tenant_service
                .entry(served.request.tenant.clone())
                .and_modify(|s| *s += 1)
                .or_insert(1);
            match outcome {
                Tick::Progressed {
                    epoch,
                    loss,
                    quality,
                } => {
                    served.seq += 1;
                    self.events.push(ProgressEvent {
                        session: id,
                        seq: served.seq,
                        tick,
                        event: Event::Epoch {
                            epoch,
                            loss,
                            quality,
                        },
                    });
                }
                Tick::Recovering => {}
                Tick::Done => {}
            }
            if session.finished() {
                self.finish(id);
            }
        }
        self.tick += 1;
    }

    fn finish(&mut self, id: u64) {
        self.running.retain(|&r| r != id);
        let served = self
            .sessions
            .remove(&id)
            .expect("finishing unknown session");
        let SessionState::Active(session) = served.state else {
            unreachable!("only active sessions finish");
        };
        let run = session.into_run();
        self.schedule.push(SchedEvent {
            tick: self.tick,
            session: id,
            action: SchedAction::Finish {
                outcome: run.outcome.signature(),
            },
        });
        let queue_wait_ticks =
            served.first_admit.expect("finished implies admitted") - served.arrived;
        let mut result = run.result;
        // The session's own clock started at first admission; the tenant
        // experienced the queue wait too, so report end-to-end wall time.
        result.wall_seconds = served.started.elapsed().as_secs_f64();
        self.finished.push(DoneMsg {
            session: id,
            outcome_signature: run.outcome.signature(),
            fault_signature: if run.faults.is_empty() {
                "clean".to_string()
            } else {
                run.faults
                    .iter()
                    .map(|f| f.signature())
                    .collect::<Vec<_>>()
                    .join(";")
            },
            result,
            queue_wait_ticks,
            epochs_executed: run.epochs_executed,
            recoveries: run.recoveries,
        });
    }
}

/// One session's record in a [`ServeReport`].
#[derive(Debug, Clone)]
pub struct SessionResult {
    /// Server-assigned session id.
    pub session: u64,
    /// Tenant that submitted it.
    pub tenant: String,
    /// The final record as the client received it.
    pub done: DoneMsg,
}

/// The outcome of replaying one request trace through a server.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Per-session results, in session-id order.
    pub sessions: Vec<SessionResult>,
    /// The full schedule log.
    pub schedule: Vec<SchedEvent>,
    /// Ticks the trace took to drain.
    pub ticks: u64,
    /// Wall-clock seconds for the whole replay.
    pub wall_seconds: f64,
}

impl ServeReport {
    /// The deterministic schedule signature.
    pub fn schedule_signature(&self) -> String {
        schedule_signature(&self.schedule)
    }

    /// Whether two replays are indistinguishable where determinism is
    /// promised: identical schedules and bitwise-identical per-session
    /// results. Wall time is excluded.
    pub fn deterministic_eq(&self, other: &ServeReport) -> bool {
        self.schedule_signature() == other.schedule_signature()
            && self.ticks == other.ticks
            && self.sessions.len() == other.sessions.len()
            && self.sessions.iter().zip(&other.sessions).all(|(a, b)| {
                a.session == b.session
                    && a.tenant == b.tenant
                    && a.done.outcome_signature == b.done.outcome_signature
                    && a.done.fault_signature == b.done.fault_signature
                    && a.done.queue_wait_ticks == b.done.queue_wait_ticks
                    && a.done.epochs_executed == b.done.epochs_executed
                    && a.done.recoveries == b.done.recoveries
                    && a.done.result.deterministic_eq(&b.done.result)
            })
    }
}

/// Replays a request trace — `(arrival_tick, request)` pairs, in arrival
/// order — through a fresh server and runs it to idle. The fixed trace is
/// the serve determinism contract's input: same trace ⇒ same report
/// ([`ServeReport::deterministic_eq`]) at any thread count.
pub fn run_trace(
    registry: &Registry,
    config: ServeConfig,
    trace: &[(u64, RunRequest)],
) -> ServeReport {
    let start = Instant::now();
    let mut server = ServerCore::new(registry, config);
    let mut next = 0usize;
    let mut results: BTreeMap<u64, SessionResult> = BTreeMap::new();
    while next < trace.len() || !server.is_idle() {
        while next < trace.len() && trace[next].0 <= server.tick_count() {
            let request = trace[next].1.clone();
            let tenant = request.tenant.clone();
            if let Ok(id) = server.submit(request) {
                results.insert(
                    id,
                    SessionResult {
                        session: id,
                        tenant: tenant.clone(),
                        done: DoneMsg {
                            session: id,
                            outcome_signature: String::new(),
                            fault_signature: String::new(),
                            result: placeholder_result(),
                            queue_wait_ticks: 0,
                            epochs_executed: 0,
                            recoveries: 0,
                        },
                    },
                );
            }
            next += 1;
        }
        server.step();
        for done in server.drain_finished() {
            let entry = results.get_mut(&done.session).expect("unknown session");
            entry.done = done;
        }
    }
    ServeReport {
        sessions: results.into_values().collect(),
        schedule: server.schedule.clone(),
        ticks: server.tick,
        wall_seconds: start.elapsed().as_secs_f64(),
    }
}

fn placeholder_result() -> RunResult {
    RunResult {
        code: String::new(),
        seed: 0,
        epochs_run: 0,
        epochs_to_target: None,
        quality_trace: Vec::new(),
        loss_trace: Vec::new(),
        final_quality: f64::NAN,
        wall_seconds: 0.0,
        resumed_from: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aibench_fault::{FaultKind, FaultSchedule};

    const PROBE: &str = "DC-AI-C15";

    #[test]
    fn trace_replay_is_deterministic() {
        let registry = Registry::aibench();
        let trace: Vec<(u64, RunRequest)> = vec![
            (0, RunRequest::new("a", PROBE, 1, 3)),
            (0, RunRequest::new("b", PROBE, 2, 3)),
            (1, RunRequest::new("a", PROBE, 3, 2)),
        ];
        let one = run_trace(&registry, ServeConfig::default(), &trace);
        let two = run_trace(&registry, ServeConfig::default(), &trace);
        assert!(one.deterministic_eq(&two));
        assert_eq!(one.sessions.len(), 3);
        assert!(one
            .sessions
            .iter()
            .all(|s| s.done.outcome_signature == "converged"
                || s.done.outcome_signature == "missed-target"));
    }

    #[test]
    fn budget_bounds_concurrency() {
        let registry = Registry::aibench();
        let trace: Vec<(u64, RunRequest)> = (0..5)
            .map(|i| (0u64, RunRequest::new("t", PROBE, i + 1, 2)))
            .collect();
        let config = ServeConfig {
            budget: 2,
            ..ServeConfig::default()
        };
        let report = run_trace(&registry, config, &trace);
        // Replay the schedule log: concurrency never exceeds the budget.
        let mut running = 0usize;
        let mut max_running = 0usize;
        for e in &report.schedule {
            match e.action {
                SchedAction::Admit | SchedAction::Resume { .. } => running += 1,
                SchedAction::Park { .. } | SchedAction::Finish { .. } => running -= 1,
                _ => {}
            }
            max_running = max_running.max(running);
        }
        assert_eq!(max_running, 2);
    }

    #[test]
    fn fair_share_interleaves_tenants() {
        let registry = Registry::aibench();
        // Tenant a floods; tenant b submits one request a moment later.
        let mut trace: Vec<(u64, RunRequest)> = (0..4)
            .map(|i| (0u64, RunRequest::new("a", PROBE, i + 1, 2)))
            .collect();
        trace.push((1, RunRequest::new("b", PROBE, 9, 2)));
        let config = ServeConfig {
            budget: 1,
            ..ServeConfig::default()
        };
        let report = run_trace(&registry, config, &trace);
        // b (session 4) must be admitted before a's second session: once
        // a has been served at all, b's zero service wins the tie.
        let admits: Vec<u64> = report
            .schedule
            .iter()
            .filter(|e| matches!(e.action, SchedAction::Admit))
            .map(|e| e.session)
            .collect();
        let b_pos = admits.iter().position(|&s| s == 4).unwrap();
        assert_eq!(b_pos, 1, "admission order {admits:?}");
    }

    #[test]
    fn priority_preempts_and_resumes_bitwise() {
        let registry = Registry::aibench();
        // Low-priority long run, then a high-priority arrival preempts it.
        let trace: Vec<(u64, RunRequest)> = vec![
            (0, RunRequest::new("low", PROBE, 1, 4)),
            (2, RunRequest::new("high", PROBE, 2, 2).with_priority(5)),
        ];
        let config = ServeConfig {
            budget: 1,
            ..ServeConfig::default()
        };
        let report = run_trace(&registry, config, &trace);
        let sig = report.schedule_signature();
        assert!(sig.contains("s0:park@"), "schedule: {sig}");
        assert!(sig.contains("s0:resume@"), "schedule: {sig}");
        // The preempted session's result is bitwise identical to running
        // it alone.
        let solo = run_trace(
            &registry,
            ServeConfig::default(),
            &[(0, RunRequest::new("low", PROBE, 1, 4))],
        );
        assert!(report.sessions[0]
            .done
            .result
            .deterministic_eq(&solo.sessions[0].done.result));
        // Every resume restores exactly the matching park epoch.
        assert_parks_match_resumes(&report.schedule);
    }

    #[test]
    fn faulty_session_is_isolated_from_clean_neighbors() {
        let registry = Registry::aibench();
        let poisoned =
            FaultSchedule::new(3).inject_persistent(1, FaultKind::LossValue { value: f32::NAN });
        let trace: Vec<(u64, RunRequest)> = vec![
            (
                0,
                RunRequest::new("chaos", PROBE, 1, 6).with_faults(poisoned),
            ),
            (0, RunRequest::new("calm", PROBE, 2, 3)),
        ];
        let report = run_trace(&registry, ServeConfig::default(), &trace);
        assert!(report.sessions[0]
            .done
            .outcome_signature
            .starts_with("quarantined"));
        // The clean tenant's run matches a solo replay bit for bit.
        let solo = run_trace(
            &registry,
            ServeConfig::default(),
            &[(0, RunRequest::new("calm", PROBE, 2, 3))],
        );
        assert_eq!(report.sessions[1].done.fault_signature, "clean");
        assert!(report.sessions[1]
            .done
            .result
            .deterministic_eq(&solo.sessions[0].done.result));
    }

    #[test]
    fn rejects_are_logged_and_returned() {
        let registry = Registry::aibench();
        let mut server = ServerCore::new(&registry, ServeConfig::default());
        let err = server
            .submit(RunRequest::new("t", "NO-SUCH", 1, 2))
            .unwrap_err();
        assert!(err.reason.contains("unknown benchmark"));
        let err = server
            .submit(RunRequest::new("t", PROBE, 1, 0))
            .unwrap_err();
        assert!(err.reason.contains("max_epochs"));
        assert_eq!(server.schedule_log().len(), 2);
        assert!(server.is_idle());
    }

    #[test]
    fn duplicate_submission_attaches_to_the_existing_session() {
        let registry = Registry::aibench();
        let mut server = ServerCore::new(&registry, ServeConfig::default());
        let submit = || RunRequest::new("t", PROBE, 1, 2).with_submission(7);
        let first = server.submit(submit()).unwrap();
        let dup = server.submit(submit()).unwrap();
        assert_eq!(first, dup);
        assert_eq!(server.lookup_submission("t", 7), Some(first));
        // A different tenant reusing the key is a distinct session.
        let other = server
            .submit(RunRequest::new("u", PROBE, 1, 2).with_submission(7))
            .unwrap();
        assert_ne!(first, other);
        // The retransmit consumed no session id and left no schedule
        // trace: two arrivals only.
        let arrivals = server
            .schedule_log()
            .iter()
            .filter(|e| matches!(e.action, SchedAction::Arrive))
            .count();
        assert_eq!(arrivals, 2);
        // The key still resolves after the session finishes.
        while !server.is_idle() {
            server.step();
        }
        assert_eq!(server.submit(submit()).unwrap(), first);
    }

    #[test]
    fn bounded_queue_sheds_load_with_a_retryable_rejection() {
        let registry = Registry::aibench();
        let config = ServeConfig {
            budget: 1,
            max_queue: 2,
            ..ServeConfig::default()
        };
        let mut server = ServerCore::new(&registry, config);
        for i in 0..2 {
            server
                .submit(RunRequest::new("t", PROBE, i + 1, 2))
                .unwrap();
        }
        let err = server
            .submit(RunRequest::new("t", PROBE, 9, 2))
            .unwrap_err();
        assert!(err.retryable);
        assert!(err.reason.contains("overloaded"));
        // Validation failures stay non-retryable.
        let err = server
            .submit(RunRequest::new("t", "NO-SUCH", 1, 2))
            .unwrap_err();
        assert!(!err.retryable);
        // Draining the queue lets a retry through.
        while !server.is_idle() {
            server.step();
        }
        assert!(server.submit(RunRequest::new("t", PROBE, 9, 2)).is_ok());
    }

    #[test]
    fn stall_ticks_lengthen_queue_waits_only() {
        let registry = Registry::aibench();
        let mut server = ServerCore::new(&registry, ServeConfig::default());
        server.stall_tick();
        server.stall_tick();
        let id = server.submit(RunRequest::new("t", PROBE, 1, 2)).unwrap();
        while !server.is_idle() {
            server.step();
        }
        let done = server.drain_finished();
        assert_eq!(done[0].session, id);
        assert_eq!(done[0].queue_wait_ticks, 0);
        assert_eq!(done[0].result.epochs_run, 2);
    }

    #[test]
    fn progress_events_carry_a_dense_per_session_seq() {
        let registry = Registry::aibench();
        let mut server = ServerCore::new(&registry, ServeConfig::default());
        let a = server.submit(RunRequest::new("t", PROBE, 1, 3)).unwrap();
        let b = server.submit(RunRequest::new("t", PROBE, 2, 2)).unwrap();
        while !server.is_idle() {
            server.step();
        }
        let events = server.drain_events();
        for id in [a, b] {
            let seqs: Vec<u64> = events
                .iter()
                .filter(|e| e.session == id)
                .map(|e| e.seq)
                .collect();
            let expected: Vec<u64> = (1..=seqs.len() as u64).collect();
            assert_eq!(seqs, expected, "session {id}");
        }
    }

    /// Shared helper: every `Resume` must restore the epoch of that
    /// session's most recent `Park` — the lost-park-snapshot invariant.
    pub(crate) fn assert_parks_match_resumes(log: &[SchedEvent]) {
        let mut last_park: BTreeMap<u64, usize> = BTreeMap::new();
        for e in log {
            match &e.action {
                SchedAction::Park { at_epoch } => {
                    last_park.insert(e.session, *at_epoch);
                }
                SchedAction::Resume { from_epoch } => {
                    let parked = last_park.get(&e.session).copied();
                    assert_eq!(
                        *from_epoch, parked,
                        "session {} resumed from {:?} but parked at {:?}",
                        e.session, from_epoch, parked
                    );
                }
                _ => {}
            }
        }
    }

    #[test]
    fn lost_snapshot_quirk_breaks_the_park_resume_invariant() {
        let registry = Registry::aibench();
        let trace: Vec<(u64, RunRequest)> = vec![
            (0, RunRequest::new("low", PROBE, 1, 4)),
            (2, RunRequest::new("high", PROBE, 2, 2).with_priority(5)),
        ];
        let config = ServeConfig {
            budget: 1,
            quirks: Quirks {
                lose_park_snapshot: true,
                ..Quirks::default()
            },
            ..ServeConfig::default()
        };
        let report = run_trace(&registry, config, &trace);
        let mut violated = false;
        let mut last_park: BTreeMap<u64, usize> = BTreeMap::new();
        for e in &report.schedule {
            match &e.action {
                SchedAction::Park { at_epoch } => {
                    last_park.insert(e.session, *at_epoch);
                }
                SchedAction::Resume { from_epoch }
                    if *from_epoch != last_park.get(&e.session).copied() =>
                {
                    violated = true;
                }
                _ => {}
            }
        }
        assert!(
            violated,
            "quirk must break the invariant: {}",
            report.schedule_signature()
        );
    }
}

//! The serving wire protocol: length-prefixed frames whose payload is a
//! ckpt snapshot container ([`SnapshotFile`]) holding one typed message.
//!
//! Reusing the checkpoint byte format buys the wire three properties for
//! free: no serde anywhere, CRC-checked payloads (a corrupted frame errors
//! instead of decoding into a plausible message), and bitwise float
//! round-trips — a [`RunResult`] crossing the wire stays
//! `deterministic_eq` to the one the server computed.
//!
//! # Framing
//!
//! Each frame is a little-endian `u32` payload length followed by that many
//! bytes. The payload is a `SnapshotFile` with a single section `msg`
//! whose `type` key names the message variant.

use std::io::{Read, Write};

use aibench::runner::RunResult;
use aibench_ckpt::{key, CkptError, SnapshotFile, State};
use aibench_fault::{FaultKind, FaultSchedule, Injection};

/// Frames larger than this are rejected before allocation — a corrupt or
/// hostile length prefix must not OOM the server.
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame exceeds u32 length")
    })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Fills `buf`, tolerating `Interrupted` and arbitrarily short reads.
/// Returns the bytes actually read: less than `buf.len()` only on a clean
/// EOF mid-fill.
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// Reads one length-prefixed frame, looping over short reads and
/// `Interrupted` until the full frame arrives or a hard error. `Ok(None)`
/// means the peer closed the connection cleanly at a frame boundary; an
/// EOF *inside* a frame is an `UnexpectedEof` error, never a truncated
/// payload handed to the decoder.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    let got = read_full(r, &mut len_bytes)?;
    if got == 0 {
        return Ok(None);
    }
    if got < len_bytes.len() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed inside a frame length prefix",
        ));
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    let got = read_full(r, &mut payload)?;
    if got < payload.len() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            format!("connection closed {got} byte(s) into a {len}-byte frame"),
        ));
    }
    Ok(Some(payload))
}

/// Stable wire names for [`FaultKind`] variants.
fn kind_name(kind: &FaultKind) -> &'static str {
    match kind {
        FaultKind::GradNan => "grad-nan",
        FaultKind::GradExplosion { .. } => "grad-explosion",
        FaultKind::ParamNan => "param-nan",
        FaultKind::ParamBitFlip { .. } => "param-bit-flip",
        FaultKind::LossValue { .. } => "loss-value",
        FaultKind::KernelPanic => "kernel-panic",
        FaultKind::SaveFail => "save-fail",
        FaultKind::LoadFail => "load-fail",
        FaultKind::EvalFreeze => "eval-freeze",
    }
}

/// The numeric payload a kind carries on the wire (0.0 for payload-free
/// kinds). `f64` holds every `f32` bit pattern exactly and `u8` losslessly.
fn kind_payload(kind: &FaultKind) -> f64 {
    match kind {
        FaultKind::GradExplosion { scale } => f64::from(*scale),
        FaultKind::ParamBitFlip { bit } => f64::from(*bit),
        FaultKind::LossValue { value } => {
            // Widening would lose the f32 bit pattern for NaN payloads;
            // ship the raw bits instead.
            f64::from_bits(u64::from(value.to_bits()))
        }
        _ => 0.0,
    }
}

fn kind_from(name: &str, payload: f64) -> Result<FaultKind, CkptError> {
    Ok(match name {
        "grad-nan" => FaultKind::GradNan,
        "grad-explosion" => FaultKind::GradExplosion {
            scale: payload as f32,
        },
        "param-nan" => FaultKind::ParamNan,
        "param-bit-flip" => FaultKind::ParamBitFlip { bit: payload as u8 },
        "loss-value" => FaultKind::LossValue {
            value: f32::from_bits(payload.to_bits() as u32),
        },
        "kernel-panic" => FaultKind::KernelPanic,
        "save-fail" => FaultKind::SaveFail,
        "load-fail" => FaultKind::LoadFail,
        "eval-freeze" => FaultKind::EvalFreeze,
        other => {
            return Err(CkptError::MetaMismatch {
                what: format!("unknown fault kind `{other}` on the wire"),
            })
        }
    })
}

/// Encodes a schedule under `prefix` (epochs, persistence flags, kind
/// names, and numeric payloads as four parallel arrays).
pub fn put_schedule(state: &mut State, prefix: &str, schedule: &FaultSchedule) {
    state.put_u64(key(prefix, "seed"), schedule.seed);
    state.put_u64s(
        key(prefix, "epochs"),
        schedule.injections.iter().map(|i| i.epoch as u64).collect(),
    );
    state.put_u64s(
        key(prefix, "persistent"),
        schedule
            .injections
            .iter()
            .map(|i| u64::from(i.persistent))
            .collect(),
    );
    let kinds: Vec<&str> = schedule
        .injections
        .iter()
        .map(|i| kind_name(&i.kind))
        .collect();
    state.put_str(key(prefix, "kinds"), kinds.join(";"));
    state.put_f64s(
        key(prefix, "payloads"),
        schedule
            .injections
            .iter()
            .map(|i| kind_payload(&i.kind))
            .collect(),
    );
}

/// Decodes a schedule encoded by [`put_schedule`].
pub fn take_schedule(state: &State, prefix: &str) -> Result<FaultSchedule, CkptError> {
    let epochs = state.u64s(&key(prefix, "epochs"))?;
    let persistent = state.u64s(&key(prefix, "persistent"))?;
    let kinds_joined = state.str(&key(prefix, "kinds"))?;
    let kinds: Vec<&str> = if kinds_joined.is_empty() {
        Vec::new()
    } else {
        kinds_joined.split(';').collect()
    };
    let payloads = state.f64s(&key(prefix, "payloads"))?;
    if epochs.len() != persistent.len()
        || epochs.len() != kinds.len()
        || epochs.len() != payloads.len()
    {
        return Err(CkptError::MetaMismatch {
            what: "fault schedule arrays disagree on length".to_string(),
        });
    }
    let mut injections = Vec::with_capacity(epochs.len());
    for i in 0..epochs.len() {
        injections.push(Injection {
            epoch: epochs[i] as usize,
            kind: kind_from(kinds[i], payloads[i])?,
            persistent: persistent[i] != 0,
        });
    }
    Ok(FaultSchedule {
        seed: state.u64(&key(prefix, "seed"))?,
        injections,
    })
}

/// One benchmark-run request as submitted by a tenant.
#[derive(Debug, Clone)]
pub struct RunRequest {
    /// Tenant identity (the fair-share accounting key).
    pub tenant: String,
    /// Client-chosen idempotency key, unique per `(tenant, submission)`.
    /// A retransmitted submit with the same key attaches to the already
    /// accepted session instead of creating a duplicate. `0` opts out
    /// (every submit is distinct — the pre-chaos behavior).
    pub submission: u64,
    /// Benchmark code (e.g. `DC-AI-C15`).
    pub code: String,
    /// Training seed.
    pub seed: u64,
    /// Epoch cap for the session.
    pub max_epochs: usize,
    /// Evaluation cadence.
    pub eval_every: usize,
    /// Priority: higher preempts lower. Equal priorities share fairly.
    pub priority: u8,
    /// Fault schedule to run the session under (empty = clean run).
    pub faults: FaultSchedule,
}

impl RunRequest {
    /// A clean (no-fault) request at default priority.
    pub fn new(tenant: &str, code: &str, seed: u64, max_epochs: usize) -> Self {
        RunRequest {
            tenant: tenant.to_string(),
            submission: 0,
            code: code.to_string(),
            seed,
            max_epochs,
            eval_every: 1,
            priority: 0,
            faults: FaultSchedule::empty(),
        }
    }

    /// Sets the priority.
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the idempotency key (non-zero enables submit deduplication).
    pub fn with_submission(mut self, submission: u64) -> Self {
        self.submission = submission;
        self
    }

    /// Sets the fault schedule.
    pub fn with_faults(mut self, faults: FaultSchedule) -> Self {
        self.faults = faults;
        self
    }

    fn put(&self, state: &mut State) {
        state.put_str("tenant", self.tenant.as_str());
        state.put_u64("submission", self.submission);
        state.put_str("code", self.code.as_str());
        state.put_u64("seed", self.seed);
        state.put_usize("max_epochs", self.max_epochs);
        state.put_usize("eval_every", self.eval_every);
        state.put_u64("priority", u64::from(self.priority));
        put_schedule(state, "faults", &self.faults);
    }

    fn take(state: &State) -> Result<RunRequest, CkptError> {
        let priority = state.u64("priority")?;
        Ok(RunRequest {
            tenant: state.str("tenant")?.to_string(),
            submission: state.u64("submission")?,
            code: state.str("code")?.to_string(),
            seed: state.u64("seed")?,
            max_epochs: state.usize("max_epochs")?,
            eval_every: state.usize("eval_every")?,
            priority: u8::try_from(priority).map_err(|_| CkptError::MetaMismatch {
                what: format!("priority {priority} exceeds u8"),
            })?,
            faults: take_schedule(state, "faults")?,
        })
    }
}

/// What happened to a session, as streamed to its client.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The session was admitted to a worker slot at the given scheduler
    /// tick.
    Admitted {
        /// Scheduler tick of admission.
        tick: u64,
    },
    /// One epoch committed.
    Epoch {
        /// The committed (1-based) epoch.
        epoch: usize,
        /// Mean training loss of the epoch.
        loss: f32,
        /// Quality, if this epoch was on the eval cadence.
        quality: Option<f64>,
    },
    /// A fault was detected and handled; the signature is
    /// `e{epoch}:{fault}>{action}`.
    Fault {
        /// The fault event's deterministic signature.
        signature: String,
    },
    /// The session was preempted: parked at the given epoch.
    Parked {
        /// Epoch of the park snapshot.
        at_epoch: usize,
    },
    /// The session resumed from its park snapshot (`None`: the snapshot
    /// was lost and the session restarted from scratch).
    Resumed {
        /// Epoch resumed from.
        from_epoch: Option<usize>,
    },
}

impl Event {
    fn put(&self, state: &mut State) {
        match self {
            Event::Admitted { tick } => {
                state.put_str("event", "admitted");
                state.put_u64("at_tick", *tick);
            }
            Event::Epoch {
                epoch,
                loss,
                quality,
            } => {
                state.put_str("event", "epoch");
                state.put_usize("epoch", *epoch);
                state.put_f32("loss", *loss);
                state.put_bool("evaluated", quality.is_some());
                state.put_f64("quality", quality.unwrap_or(0.0));
            }
            Event::Fault { signature } => {
                state.put_str("event", "fault");
                state.put_str("signature", signature.as_str());
            }
            Event::Parked { at_epoch } => {
                state.put_str("event", "parked");
                state.put_usize("at_epoch", *at_epoch);
            }
            Event::Resumed { from_epoch } => {
                state.put_str("event", "resumed");
                state.put_bool("from_snapshot", from_epoch.is_some());
                state.put_usize("from_epoch", from_epoch.unwrap_or(0));
            }
        }
    }

    fn take(state: &State) -> Result<Event, CkptError> {
        Ok(match state.str("event")? {
            "admitted" => Event::Admitted {
                tick: state.u64("at_tick")?,
            },
            "epoch" => Event::Epoch {
                epoch: state.usize("epoch")?,
                loss: state.f32("loss")?,
                quality: state
                    .bool("evaluated")?
                    .then(|| state.f64("quality"))
                    .transpose()?,
            },
            "fault" => Event::Fault {
                signature: state.str("signature")?.to_string(),
            },
            "parked" => Event::Parked {
                at_epoch: state.usize("at_epoch")?,
            },
            "resumed" => Event::Resumed {
                from_epoch: state
                    .bool("from_snapshot")?
                    .then(|| state.usize("from_epoch"))
                    .transpose()?,
            },
            other => {
                return Err(CkptError::MetaMismatch {
                    what: format!("unknown event `{other}` on the wire"),
                })
            }
        })
    }
}

/// One progress event, stamped with its session, scheduler tick, and a
/// per-session sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressEvent {
    /// Server-assigned session id.
    pub session: u64,
    /// Per-session 1-based sequence number: the client's dedupe and
    /// replay cursor. Duplicated frames repeat a seq (drop them);
    /// a reconnecting client asks for everything after its last seq.
    pub seq: u64,
    /// Scheduler tick the event happened at.
    pub tick: u64,
    /// What happened.
    pub event: Event,
}

/// The final record a client receives for its session.
#[derive(Debug, Clone)]
pub struct DoneMsg {
    /// Server-assigned session id.
    pub session: u64,
    /// [`Outcome`](aibench_fault::Outcome) signature (`converged`,
    /// `recovered:2`, `quarantined:kernel-panic`, …).
    pub outcome_signature: String,
    /// The fault log signature (`clean` when no faults fired).
    pub fault_signature: String,
    /// The training result (floats bitwise-preserved across the wire).
    pub result: RunResult,
    /// Scheduler ticks spent queued before first admission.
    pub queue_wait_ticks: u64,
    /// Epochs executed including recovery re-runs.
    pub epochs_executed: usize,
    /// Recovery actions taken.
    pub recoveries: usize,
}

/// A message from client to server.
#[derive(Debug, Clone)]
pub enum ClientMsg {
    /// Submit one benchmark run.
    Submit(RunRequest),
    /// Redeem the lease of an already-submitted session after a dropped
    /// connection: re-attach to `(tenant, submission)` and replay every
    /// buffered event with `seq > after_seq`.
    Reconnect {
        /// Tenant identity of the original submit.
        tenant: String,
        /// Idempotency key of the original submit (non-zero).
        submission: u64,
        /// Last progress seq the client saw; the server replays from
        /// `after_seq + 1`.
        after_seq: u64,
    },
}

/// A message from server to client.
#[derive(Debug, Clone)]
pub enum ServerMsg {
    /// The submission was accepted under this session id.
    Accepted {
        /// Server-assigned session id.
        session: u64,
    },
    /// The submission was rejected.
    Rejected {
        /// Why.
        reason: String,
        /// Whether retrying the same submission later can succeed
        /// (`true` for load shedding, `false` for validation errors).
        retryable: bool,
    },
    /// A progress event for the client's session.
    Progress(ProgressEvent),
    /// The session finished; this is its final record.
    Done(DoneMsg),
}

fn encode(build: impl FnOnce(&mut State)) -> Vec<u8> {
    let mut state = State::new();
    build(&mut state);
    let mut file = SnapshotFile::new();
    file.push("msg", state);
    file.to_bytes()
}

fn msg_state(bytes: &[u8]) -> Result<State, CkptError> {
    Ok(SnapshotFile::from_bytes(bytes)?.section("msg")?.clone())
}

impl ClientMsg {
    /// Encodes the message to frame payload bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            ClientMsg::Submit(req) => encode(|state| {
                state.put_str("type", "submit");
                req.put(state);
            }),
            ClientMsg::Reconnect {
                tenant,
                submission,
                after_seq,
            } => encode(|state| {
                state.put_str("type", "reconnect");
                state.put_str("tenant", tenant.as_str());
                state.put_u64("submission", *submission);
                state.put_u64("after_seq", *after_seq);
            }),
        }
    }

    /// Decodes a frame payload.
    pub fn from_bytes(bytes: &[u8]) -> Result<ClientMsg, CkptError> {
        let state = msg_state(bytes)?;
        match state.str("type")? {
            "submit" => Ok(ClientMsg::Submit(RunRequest::take(&state)?)),
            "reconnect" => Ok(ClientMsg::Reconnect {
                tenant: state.str("tenant")?.to_string(),
                submission: state.u64("submission")?,
                after_seq: state.u64("after_seq")?,
            }),
            other => Err(CkptError::MetaMismatch {
                what: format!("unknown client message `{other}`"),
            }),
        }
    }
}

impl ServerMsg {
    /// Encodes the message to frame payload bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            ServerMsg::Accepted { session } => encode(|state| {
                state.put_str("type", "accepted");
                state.put_u64("session", *session);
            }),
            ServerMsg::Rejected { reason, retryable } => encode(|state| {
                state.put_str("type", "rejected");
                state.put_str("reason", reason.as_str());
                state.put_bool("retryable", *retryable);
            }),
            ServerMsg::Progress(progress) => encode(|state| {
                state.put_str("type", "progress");
                state.put_u64("session", progress.session);
                state.put_u64("seq", progress.seq);
                state.put_u64("tick", progress.tick);
                progress.event.put(state);
            }),
            ServerMsg::Done(done) => encode(|state| {
                state.put_str("type", "done");
                state.put_u64("session", done.session);
                state.put_str("outcome", done.outcome_signature.as_str());
                state.put_str("faults", done.fault_signature.as_str());
                state.put_u64("queue_wait_ticks", done.queue_wait_ticks);
                state.put_usize("epochs_executed", done.epochs_executed);
                state.put_usize("recoveries", done.recoveries);
                for (key, value) in done.result.to_state().iter() {
                    state.put(format!("result.{key}"), value.clone());
                }
            }),
        }
    }

    /// Decodes a frame payload.
    pub fn from_bytes(bytes: &[u8]) -> Result<ServerMsg, CkptError> {
        let state = msg_state(bytes)?;
        Ok(match state.str("type")? {
            "accepted" => ServerMsg::Accepted {
                session: state.u64("session")?,
            },
            "rejected" => ServerMsg::Rejected {
                reason: state.str("reason")?.to_string(),
                retryable: state.bool("retryable")?,
            },
            "progress" => ServerMsg::Progress(ProgressEvent {
                session: state.u64("session")?,
                seq: state.u64("seq")?,
                tick: state.u64("tick")?,
                event: Event::take(&state)?,
            }),
            "done" => {
                let mut result_state = State::new();
                for (key, value) in state.iter() {
                    if let Some(field) = key.strip_prefix("result.") {
                        result_state.put(field, value.clone());
                    }
                }
                ServerMsg::Done(DoneMsg {
                    session: state.u64("session")?,
                    outcome_signature: state.str("outcome")?.to_string(),
                    fault_signature: state.str("faults")?.to_string(),
                    result: RunResult::from_state(&result_state)?,
                    queue_wait_ticks: state.u64("queue_wait_ticks")?,
                    epochs_executed: state.usize("epochs_executed")?,
                    recoveries: state.usize("recoveries")?,
                })
            }
            other => {
                return Err(CkptError::MetaMismatch {
                    what: format!("unknown server message `{other}`"),
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule() -> FaultSchedule {
        FaultSchedule::new(7)
            .inject(2, FaultKind::LossValue { value: f32::NAN })
            .inject_persistent(3, FaultKind::GradExplosion { scale: 1e12 })
            .inject(4, FaultKind::ParamBitFlip { bit: 30 })
            .inject(5, FaultKind::KernelPanic)
            .inject(6, FaultKind::SaveFail)
            .inject(7, FaultKind::LoadFail)
            .inject(8, FaultKind::EvalFreeze)
            .inject(9, FaultKind::GradNan)
            .inject(10, FaultKind::ParamNan)
    }

    #[test]
    fn every_fault_kind_crosses_the_wire() {
        let req = RunRequest::new("acme", "DC-AI-C15", 3, 8)
            .with_priority(2)
            .with_faults(schedule());
        let bytes = ClientMsg::Submit(req.clone()).to_bytes();
        let ClientMsg::Submit(back) = ClientMsg::from_bytes(&bytes).unwrap() else {
            panic!("wrong message");
        };
        assert_eq!(back.tenant, req.tenant);
        assert_eq!(back.priority, 2);
        assert_eq!(back.faults.seed, 7);
        assert_eq!(back.faults.injections.len(), req.faults.injections.len());
        for (a, b) in back.faults.injections.iter().zip(&req.faults.injections) {
            assert_eq!(a.epoch, b.epoch);
            assert_eq!(a.persistent, b.persistent);
            assert_eq!(format!("{:?}", a.kind), format!("{:?}", b.kind));
        }
        // NaN payload survives bitwise.
        let FaultKind::LossValue { value } = back.faults.injections[0].kind else {
            panic!("wrong kind");
        };
        assert!(value.is_nan());
    }

    #[test]
    fn reconnect_and_submission_round_trip() {
        let req = RunRequest::new("acme", "DC-AI-C15", 3, 8).with_submission(42);
        let bytes = ClientMsg::Submit(req).to_bytes();
        let ClientMsg::Submit(back) = ClientMsg::from_bytes(&bytes).unwrap() else {
            panic!("wrong message");
        };
        assert_eq!(back.submission, 42);

        let bytes = ClientMsg::Reconnect {
            tenant: "acme".to_string(),
            submission: 42,
            after_seq: 7,
        }
        .to_bytes();
        let ClientMsg::Reconnect {
            tenant,
            submission,
            after_seq,
        } = ClientMsg::from_bytes(&bytes).unwrap()
        else {
            panic!("wrong message");
        };
        assert_eq!((tenant.as_str(), submission, after_seq), ("acme", 42, 7));

        let bytes = ServerMsg::Rejected {
            reason: "admission queue full".to_string(),
            retryable: true,
        }
        .to_bytes();
        let ServerMsg::Rejected { retryable, .. } = ServerMsg::from_bytes(&bytes).unwrap() else {
            panic!("wrong message");
        };
        assert!(retryable);
    }

    #[test]
    fn interrupted_and_short_reads_still_deliver_the_frame() {
        /// Delivers the underlying bytes one at a time, interleaving an
        /// `Interrupted` error before every real byte.
        struct Hostile<'a> {
            bytes: &'a [u8],
            at: usize,
            interrupt_next: bool,
        }
        impl Read for Hostile<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.interrupt_next {
                    self.interrupt_next = false;
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::Interrupted,
                        "signal",
                    ));
                }
                self.interrupt_next = true;
                if self.at >= self.bytes.len() || buf.is_empty() {
                    return Ok(0);
                }
                buf[0] = self.bytes[self.at];
                self.at += 1;
                Ok(1)
            }
        }
        let msg = ServerMsg::Accepted { session: 3 }.to_bytes();
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).unwrap();
        let mut r = Hostile {
            bytes: &buf,
            at: 0,
            interrupt_next: true,
        };
        let frame = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(frame, msg);
        assert!(read_frame(&mut r).unwrap().is_none());

        // A clean EOF inside a frame is an error, not a short payload.
        let mut truncated = Hostile {
            bytes: &buf[..buf.len() - 1],
            at: 0,
            interrupt_next: false,
        };
        let err = read_frame(&mut truncated).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let msgs = vec![
            ServerMsg::Accepted { session: 9 }.to_bytes(),
            ServerMsg::Progress(ProgressEvent {
                session: 9,
                seq: 1,
                tick: 4,
                event: Event::Epoch {
                    epoch: 1,
                    loss: 0.5,
                    quality: Some(0.25),
                },
            })
            .to_bytes(),
            ServerMsg::Rejected {
                reason: "unknown benchmark".to_string(),
                retryable: false,
            }
            .to_bytes(),
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            write_frame(&mut buf, m).unwrap();
        }
        let mut r = &buf[..];
        for expected in &msgs {
            let frame = read_frame(&mut r).unwrap().unwrap();
            assert_eq!(&frame, expected);
            assert!(ServerMsg::from_bytes(&frame).is_ok());
        }
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn hostile_length_prefix_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(b"junk");
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn done_message_preserves_result_bits() {
        let result = RunResult {
            code: "DC-AI-C15".to_string(),
            seed: 3,
            epochs_run: 4,
            epochs_to_target: Some(4),
            quality_trace: vec![(1, 0.5), (4, f64::from_bits(0x7ff8_0000_0000_0001))],
            loss_trace: vec![0.5, f32::NAN, 0.25, -0.0],
            final_quality: 0.9,
            wall_seconds: 1.5,
            resumed_from: None,
        };
        let done = DoneMsg {
            session: 11,
            outcome_signature: "recovered:1".to_string(),
            fault_signature: "e2:non-finite-loss>rollback".to_string(),
            result: result.clone(),
            queue_wait_ticks: 6,
            epochs_executed: 7,
            recoveries: 1,
        };
        let bytes = ServerMsg::Done(done).to_bytes();
        let ServerMsg::Done(back) = ServerMsg::from_bytes(&bytes).unwrap() else {
            panic!("wrong message");
        };
        assert!(back.result.deterministic_eq(&result));
        assert_eq!(back.queue_wait_ticks, 6);
        assert_eq!(back.outcome_signature, "recovered:1");
    }
}

//! Elastic group membership: a plan of joins and leaves applied at epoch
//! boundaries.
//!
//! Membership only ever changes between epochs — mid-epoch exits exist too,
//! but those are *faults* (`DistFaultKind::WorkerDrop`), not plan entries.
//! Keeping planned elasticity at boundaries is what lets the runner cut one
//! consistent group snapshot per epoch and re-shard deterministically: after
//! any change the live workers are re-ranked in ascending id order and each
//! takes the stride of every global batch matching its new rank.

/// Identifies a worker across its whole lifetime (stable under re-ranking).
pub type WorkerId = u32;

/// A planned membership change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipChange {
    /// The worker joins the group, syncing to the group's current state.
    Join(WorkerId),
    /// The worker leaves gracefully; its state is parked in the snapshot.
    Leave(WorkerId),
}

/// A membership change taking effect at the start of 1-based `epoch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipEvent {
    /// 1-based epoch at whose boundary the change applies.
    pub epoch: usize,
    /// The change itself.
    pub change: MembershipChange,
}

/// An ordered plan of boundary membership changes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MembershipPlan {
    events: Vec<MembershipEvent>,
}

impl MembershipPlan {
    /// A plan with no changes: the initial group runs to completion.
    pub fn empty() -> Self {
        MembershipPlan::default()
    }

    /// Plans `worker` to join at the boundary entering 1-based `epoch`.
    pub fn join(mut self, epoch: usize, worker: WorkerId) -> Self {
        self.events.push(MembershipEvent {
            epoch,
            change: MembershipChange::Join(worker),
        });
        self
    }

    /// Plans `worker` to leave at the boundary entering 1-based `epoch`.
    pub fn leave(mut self, epoch: usize, worker: WorkerId) -> Self {
        self.events.push(MembershipEvent {
            epoch,
            change: MembershipChange::Leave(worker),
        });
        self
    }

    /// Whether the plan holds no changes.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All planned events, in insertion order.
    pub fn events(&self) -> &[MembershipEvent] {
        &self.events
    }

    /// The changes applying at the boundary entering `epoch`, in plan order.
    pub fn changes_at(&self, epoch: usize) -> impl Iterator<Item = MembershipChange> + '_ {
        self.events
            .iter()
            .filter(move |e| e.epoch == epoch)
            .map(|e| e.change)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn changes_filter_by_epoch_in_order() {
        let plan = MembershipPlan::empty().join(3, 7).leave(2, 1).join(3, 8);
        let at3: Vec<_> = plan.changes_at(3).collect();
        assert_eq!(
            at3,
            vec![MembershipChange::Join(7), MembershipChange::Join(8)]
        );
        let at2: Vec<_> = plan.changes_at(2).collect();
        assert_eq!(at2, vec![MembershipChange::Leave(1)]);
        assert!(plan.changes_at(5).next().is_none());
    }
}

//! Distributed fault taxonomy: injectable worker-level faults, the recovery
//! policy mapping each kind to an action, and the event record a run keeps.
//!
//! Injections are addressed by `(epoch, step, worker)` and are one-shot:
//! once a fault fires it stays consumed even when the recovery action
//! replays the epoch from its boundary snapshot, so a recovered run makes
//! forward progress instead of re-tripping forever. Persistence across
//! process restarts is *not* needed — snapshots are cut at epoch
//! boundaries, so a resumed run re-enters an epoch at its start and
//! re-fires exactly the injections an uninterrupted run would have.

use crate::membership::WorkerId;

/// An injectable distributed fault kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DistFaultKind {
    /// The worker is late by `ticks` units of logical time.
    StragglerDelay {
        /// Logical-time delay the straggler adds to the step.
        ticks: u64,
    },
    /// The worker disappears mid-epoch and never answers again.
    WorkerDrop,
    /// The worker's gradient shard is corrupted in flight (bad CRC).
    CorruptGradShard,
    /// The worker's all-reduce contribution is lost before arrival.
    LostContribution,
}

impl DistFaultKind {
    /// Stable machine-readable kind label.
    pub fn name(&self) -> &'static str {
        match self {
            DistFaultKind::StragglerDelay { .. } => "straggler-delay",
            DistFaultKind::WorkerDrop => "worker-drop",
            DistFaultKind::CorruptGradShard => "corrupt-grad-shard",
            DistFaultKind::LostContribution => "lost-contribution",
        }
    }
}

/// One scheduled fault: `kind` strikes `worker` at 1-based `(epoch, step)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistInjection {
    /// 1-based epoch at which the fault fires.
    pub epoch: usize,
    /// 1-based step within the epoch at which the fault fires.
    pub step: usize,
    /// The worker the fault strikes.
    pub worker: WorkerId,
    /// What goes wrong.
    pub kind: DistFaultKind,
}

/// A deterministic, replayable schedule of distributed faults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DistSchedule {
    injections: Vec<DistInjection>,
}

impl DistSchedule {
    /// A schedule with no faults.
    pub fn empty() -> Self {
        DistSchedule::default()
    }

    /// Adds a fault firing at 1-based `(epoch, step)` against `worker`.
    pub fn inject(
        mut self,
        epoch: usize,
        step: usize,
        worker: WorkerId,
        kind: DistFaultKind,
    ) -> Self {
        self.injections.push(DistInjection {
            epoch,
            step,
            worker,
            kind,
        });
        self
    }

    /// Whether the schedule holds no injections.
    pub fn is_empty(&self) -> bool {
        self.injections.is_empty()
    }

    /// The scheduled injections, in insertion order.
    pub fn injections(&self) -> &[DistInjection] {
        &self.injections
    }

    /// Derives a reproducible random schedule of `count` faults against a
    /// `world`-sized group over `max_epoch` epochs of `steps` steps each.
    /// The same seed always yields the same schedule.
    pub fn seeded(seed: u64, world: usize, max_epoch: usize, steps: usize, count: usize) -> Self {
        let mut rng = aibench_tensor::Rng::seed_from(seed ^ 0xD157_FA17);
        let mut schedule = DistSchedule::empty();
        for _ in 0..count {
            let epoch = 1 + rng.below(max_epoch.max(1));
            let step = 1 + rng.below(steps.max(1));
            let worker = rng.below(world.max(1)) as WorkerId;
            let kind = match rng.below(4) {
                0 => DistFaultKind::StragglerDelay {
                    ticks: 1 + rng.below(12) as u64,
                },
                1 => DistFaultKind::WorkerDrop,
                2 => DistFaultKind::CorruptGradShard,
                _ => DistFaultKind::LostContribution,
            };
            schedule = schedule.inject(epoch, step, worker, kind);
        }
        schedule
    }
}

/// The recovery action the runner takes against a detected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistAction {
    /// Remove the worker from the group, reassign shards over the survivors,
    /// and replay the epoch from its boundary snapshot.
    ExcludeAndReshard,
    /// Restore every replica from the epoch-boundary snapshot and replay the
    /// epoch with the same membership.
    RollbackToSnapshot,
    /// Drop the bad contribution from this step's all-reduce and reweight
    /// the survivors; membership is untouched.
    QuarantineShard,
    /// Account the delay in logical time and proceed; nothing is discarded.
    AbsorbDelay,
}

impl DistAction {
    /// Stable machine-readable action label.
    pub fn name(&self) -> &'static str {
        match self {
            DistAction::ExcludeAndReshard => "exclude-reshard",
            DistAction::RollbackToSnapshot => "rollback",
            DistAction::QuarantineShard => "shard-quarantine",
            DistAction::AbsorbDelay => "absorb-delay",
        }
    }
}

/// Maps each detected fault kind to its recovery action.
///
/// A worker drop always excludes (the worker is gone); the policy's other
/// arms are free choices. `straggler_exclude_after` escalates a straggler
/// to exclusion once its delay meets the threshold — slow workers are
/// tolerated, dead-slow ones are cut loose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistPolicy {
    /// Action for a straggler below the exclusion threshold.
    pub straggler: DistAction,
    /// Delay (ticks) at which a straggler is excluded instead.
    pub straggler_exclude_after: u64,
    /// Action for a corrupted gradient shard.
    pub corrupt_shard: DistAction,
    /// Action for a lost all-reduce contribution.
    pub lost_contribution: DistAction,
    /// Recoveries allowed before the run aborts.
    pub max_recoveries: usize,
}

impl Default for DistPolicy {
    fn default() -> Self {
        DistPolicy {
            straggler: DistAction::AbsorbDelay,
            straggler_exclude_after: 16,
            corrupt_shard: DistAction::QuarantineShard,
            lost_contribution: DistAction::RollbackToSnapshot,
            max_recoveries: 8,
        }
    }
}

/// One detected-and-handled fault in a run's event log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistFaultEvent {
    /// 1-based epoch at which the fault fired.
    pub epoch: usize,
    /// 1-based step within the epoch.
    pub step: usize,
    /// The worker the fault struck.
    pub worker: WorkerId,
    /// What went wrong.
    pub fault: DistFaultKind,
    /// What the runner did about it.
    pub action: DistAction,
    /// Group size after the action took effect.
    pub world_after: usize,
}

impl DistFaultEvent {
    /// Compact `e{epoch}s{step}w{worker}:{kind}>{action}` signature; a run's
    /// signature sequence is part of its deterministic identity.
    pub fn signature(&self) -> String {
        format!(
            "e{}s{}w{}:{}>{}",
            self.epoch,
            self.step,
            self.worker,
            self.fault.name(),
            self.action.name()
        )
    }
}

impl std::fmt::Display for DistFaultEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "epoch {} step {} worker {}: {} -> {} (world {})",
            self.epoch,
            self.step,
            self.worker,
            self.fault.name(),
            self.action.name(),
            self.world_after
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_schedules_replay() {
        let a = DistSchedule::seeded(42, 4, 10, 8, 6);
        let b = DistSchedule::seeded(42, 4, 10, 8, 6);
        assert_eq!(a, b);
        assert_eq!(a.injections().len(), 6);
        assert!(a.injections().iter().all(|i| i.epoch >= 1
            && i.epoch <= 10
            && i.step >= 1
            && i.step <= 8
            && i.worker < 4));
        let c = DistSchedule::seeded(43, 4, 10, 8, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn signatures_are_stable() {
        let ev = DistFaultEvent {
            epoch: 3,
            step: 2,
            worker: 1,
            fault: DistFaultKind::WorkerDrop,
            action: DistAction::ExcludeAndReshard,
            world_after: 3,
        };
        assert_eq!(ev.signature(), "e3s2w1:worker-drop>exclude-reshard");
    }

    #[test]
    fn kind_and_action_names_are_distinct() {
        let kinds = [
            DistFaultKind::StragglerDelay { ticks: 1 }.name(),
            DistFaultKind::WorkerDrop.name(),
            DistFaultKind::CorruptGradShard.name(),
            DistFaultKind::LostContribution.name(),
        ];
        let mut sorted = kinds.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), kinds.len());
    }
}

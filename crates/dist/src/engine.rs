//! The deterministic data-parallel runner: N simulated workers, one shared
//! batch stream, strided shards, an order-stable weighted tree all-reduce,
//! elastic membership at epoch boundaries, and fault-driven recovery.
//!
//! # Determinism contract
//!
//! For a fixed `(factory, seed, DistConfig, RunParams)` the run's entire
//! observable identity — losses, qualities, world trace, fault signatures,
//! reshard count, logical time — is bitwise reproducible at any
//! `AIBENCH_THREADS` setting: worker order is logical rank order, the
//! all-reduce folds in a fixed-fanout tree with thread-invariant chunking,
//! and all randomness flows from the seed. A one-worker group with an empty
//! schedule is bit-identical to plain sequential training because every
//! hook degenerates to the `train_epoch` arithmetic.
//!
//! # Recovery
//!
//! Each epoch starts by cutting an in-memory *boundary snapshot* of every
//! replica (trainer state + cursor state). Mid-epoch faults either proceed
//! with a reweighted all-reduce (`QuarantineShard`, `AbsorbDelay`) or
//! restore the boundary and replay the epoch (`RollbackToSnapshot`,
//! `ExcludeAndReshard` — the latter after removing the failed worker and
//! re-ranking the survivors). Injections are one-shot, so replays make
//! progress. Replayed steps still accrue logical time: recovery is visible
//! in the run's cost accounting.

use std::collections::BTreeMap;

use aibench_ckpt::{CheckpointSink, CkptError, Restore as _, Snapshot as _, SnapshotFile, State};
use aibench_data::shard::ShardedCursor;
use aibench_models::DataParallel;

use crate::fault::{DistAction, DistFaultEvent, DistFaultKind, DistPolicy, DistSchedule};
use crate::membership::{MembershipChange, MembershipPlan, WorkerId};
use crate::reduce::{tree_reduce, GradShard};

/// Snapshot-format marker checked on resume.
const FORMAT_TAG: &str = "aibench-dist/v1";

/// Builds one replica trainer from the run seed. Every worker is built from
/// the *same* seed so all replicas start bitwise identical.
pub type ReplicaFactory<'a> = dyn Fn(u64) -> Box<dyn DataParallel> + 'a;

/// Stopping and cadence parameters of a distributed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunParams {
    /// Upper bound on training epochs.
    pub max_epochs: usize,
    /// Evaluate quality every this many epochs (0 behaves as 1); the final
    /// epoch is always evaluated.
    pub eval_every: usize,
    /// Save a group snapshot through the sink every this many epochs
    /// (0 disables saving). Only used by the resumable entry point.
    pub snapshot_every: usize,
}

impl Default for RunParams {
    fn default() -> Self {
        RunParams {
            max_epochs: 60,
            eval_every: 1,
            snapshot_every: 0,
        }
    }
}

/// The distributed group: initial size, planned elasticity, fault schedule,
/// and recovery policy.
#[derive(Debug, Clone, Default)]
pub struct DistConfig {
    /// Initial number of workers (ranks `0..world`, worker ids `0..world`).
    pub world: usize,
    /// Planned joins and leaves at epoch boundaries.
    pub membership: MembershipPlan,
    /// Injected faults.
    pub schedule: DistSchedule,
    /// Recovery policy.
    pub policy: DistPolicy,
}

impl DistConfig {
    /// A fault-free, static group of `world` workers.
    pub fn with_world(world: usize) -> Self {
        DistConfig {
            world,
            membership: MembershipPlan::empty(),
            schedule: DistSchedule::empty(),
            policy: DistPolicy::default(),
        }
    }
}

/// The outcome of a distributed training run.
#[derive(Debug, Clone)]
pub struct DistRunResult {
    /// The seed every replica was built from.
    pub seed: u64,
    /// Group size at the start of the run.
    pub initial_world: usize,
    /// Training epochs completed.
    pub epochs_run: usize,
    /// First epoch at which the quality target held, if reached.
    pub epochs_to_target: Option<usize>,
    /// `(epoch, quality)` at every evaluation.
    pub quality_trace: Vec<(usize, f64)>,
    /// Mean training loss per completed epoch.
    pub loss_trace: Vec<f32>,
    /// Quality at the last evaluation (`NaN` before any).
    pub final_quality: f64,
    /// `(epoch, live workers)` after each completed epoch.
    pub world_trace: Vec<(usize, usize)>,
    /// Every detected fault and the action taken, in order.
    pub faults: Vec<DistFaultEvent>,
    /// Number of deterministic re-shardings (membership changes and
    /// exclusions).
    pub reshards: usize,
    /// Logical time consumed: one tick per executed step (replayed steps
    /// included) plus absorbed straggler delays.
    pub logical_time: u64,
    /// Epoch of the snapshot this run resumed from, if any.
    pub resumed_from: Option<usize>,
    /// Whether the run aborted (recovery budget exhausted or no live
    /// workers left).
    pub aborted: bool,
}

impl DistRunResult {
    /// Bitwise deterministic identity: every reproducible field compares
    /// equal, floats by bit pattern, faults by signature. `resumed_from`
    /// is excluded — an interrupted-and-resumed run must compare equal to
    /// an uninterrupted one.
    pub fn deterministic_eq(&self, other: &DistRunResult) -> bool {
        self.seed == other.seed
            && self.initial_world == other.initial_world
            && self.epochs_run == other.epochs_run
            && self.epochs_to_target == other.epochs_to_target
            && self.loss_trace.len() == other.loss_trace.len()
            && self
                .loss_trace
                .iter()
                .zip(&other.loss_trace)
                .all(|(a, b)| a.to_bits() == b.to_bits())
            && self.quality_trace.len() == other.quality_trace.len()
            && self
                .quality_trace
                .iter()
                .zip(&other.quality_trace)
                .all(|((ea, qa), (eb, qb))| ea == eb && qa.to_bits() == qb.to_bits())
            && self.final_quality.to_bits() == other.final_quality.to_bits()
            && self.world_trace == other.world_trace
            && self.faults.len() == other.faults.len()
            && self
                .faults
                .iter()
                .zip(&other.faults)
                .all(|(a, b)| a.signature() == b.signature())
            && self.reshards == other.reshards
            && self.logical_time == other.logical_time
            && self.aborted == other.aborted
    }

    /// The fault signatures, in order of occurrence.
    pub fn fault_signatures(&self) -> Vec<String> {
        self.faults.iter().map(DistFaultEvent::signature).collect()
    }
}

/// One live worker: stable id, its model replica, its shard cursor.
struct Replica {
    id: WorkerId,
    trainer: Box<dyn DataParallel>,
    cursor: ShardedCursor,
}

/// Per-replica state captured at an epoch boundary for rollback.
struct BoundaryEntry {
    id: WorkerId,
    trainer: State,
    cursor: State,
}

enum Attempt {
    Done(f32),
    Replay,
    Abort,
}

struct Session<'a> {
    factory: &'a ReplicaFactory<'a>,
    seed: u64,
    initial_world: usize,
    replicas: Vec<Replica>,
    parked: BTreeMap<WorkerId, (State, State)>,
    consumed: Vec<bool>,
    recoveries: usize,
    epochs_run: usize,
    epochs_to_target: Option<usize>,
    quality_trace: Vec<(usize, f64)>,
    loss_trace: Vec<f32>,
    final_quality: f64,
    world_trace: Vec<(usize, usize)>,
    faults: Vec<DistFaultEvent>,
    reshards: usize,
    logical_time: u64,
    resumed_from: Option<usize>,
    aborted: bool,
}

impl<'a> Session<'a> {
    fn fresh(factory: &'a ReplicaFactory<'a>, seed: u64, cfg: &DistConfig) -> Self {
        assert!(cfg.world > 0, "distributed world size must be positive");
        let replicas: Vec<Replica> = (0..cfg.world)
            .map(|rank| {
                let trainer = factory(seed);
                let cursor = ShardedCursor::new(
                    trainer.train_len(),
                    trainer.global_batch(),
                    trainer.data_rng(),
                    cfg.world,
                    rank,
                );
                Replica {
                    id: rank as WorkerId,
                    trainer,
                    cursor,
                }
            })
            .collect();
        Session {
            factory,
            seed,
            initial_world: cfg.world,
            replicas,
            parked: BTreeMap::new(),
            consumed: vec![false; cfg.schedule.injections().len()],
            recoveries: 0,
            epochs_run: 0,
            epochs_to_target: None,
            quality_trace: Vec::new(),
            loss_trace: Vec::new(),
            final_quality: f64::NAN,
            world_trace: Vec::new(),
            faults: Vec::new(),
            reshards: 0,
            logical_time: 0,
            resumed_from: None,
            aborted: false,
        }
    }

    fn into_result(self) -> DistRunResult {
        DistRunResult {
            seed: self.seed,
            initial_world: self.initial_world,
            epochs_run: self.epochs_run,
            epochs_to_target: self.epochs_to_target,
            quality_trace: self.quality_trace,
            loss_trace: self.loss_trace,
            final_quality: self.final_quality,
            world_trace: self.world_trace,
            faults: self.faults,
            reshards: self.reshards,
            logical_time: self.logical_time,
            resumed_from: self.resumed_from,
            aborted: self.aborted,
        }
    }

    fn rank_of(&self, id: WorkerId) -> Option<usize> {
        self.replicas.iter().position(|r| r.id == id)
    }

    fn record(
        &mut self,
        epoch: usize,
        step: usize,
        worker: WorkerId,
        fault: DistFaultKind,
        action: DistAction,
        world_after: usize,
    ) {
        self.faults.push(DistFaultEvent {
            epoch,
            step,
            worker,
            fault,
            action,
            world_after,
        });
    }

    /// Accounts one recovery against the policy budget; `false` aborts.
    fn admit_recovery(&mut self, policy: &DistPolicy) -> bool {
        self.recoveries += 1;
        self.recoveries <= policy.max_recoveries
    }

    fn capture_boundary(&self) -> Vec<BoundaryEntry> {
        self.replicas
            .iter()
            .map(|r| {
                let mut trainer = State::new();
                r.trainer.save_state(&mut trainer);
                let mut cursor = State::new();
                r.cursor.snapshot(&mut cursor, "");
                BoundaryEntry {
                    id: r.id,
                    trainer,
                    cursor,
                }
            })
            .collect()
    }

    /// Restores every live replica from the boundary and re-ranks shards.
    fn restore_boundary(&mut self, boundary: &[BoundaryEntry]) {
        let world = boundary.len();
        debug_assert_eq!(world, self.replicas.len());
        for (rank, entry) in boundary.iter().enumerate() {
            let replica = &mut self.replicas[rank];
            debug_assert_eq!(replica.id, entry.id);
            replica
                .trainer
                .load_state(&entry.trainer)
                .expect("boundary trainer state must round-trip");
            replica
                .cursor
                .restore(&entry.cursor, "")
                .expect("boundary cursor state must round-trip");
            replica.cursor.set_shard(world, rank);
        }
    }

    /// Removes `id` from the group and the boundary; survivors re-rank on
    /// the following `restore_boundary`.
    fn exclude(&mut self, id: WorkerId, boundary: &mut Vec<BoundaryEntry>) {
        if let Some(pos) = self.rank_of(id) {
            self.replicas.remove(pos);
        }
        boundary.retain(|b| b.id != id);
        self.reshards += 1;
    }

    /// Applies planned joins and leaves at the boundary entering `epoch`.
    fn apply_membership(&mut self, epoch: usize, plan: &MembershipPlan) {
        let changes: Vec<MembershipChange> = plan.changes_at(epoch).collect();
        if changes.is_empty() {
            return;
        }
        let mut changed = false;
        for change in changes {
            match change {
                MembershipChange::Leave(id) => {
                    if let Some(pos) = self.rank_of(id) {
                        let replica = &self.replicas[pos];
                        let mut trainer = State::new();
                        replica.trainer.save_state(&mut trainer);
                        let mut cursor = State::new();
                        replica.cursor.snapshot(&mut cursor, "");
                        self.parked.insert(id, (trainer, cursor));
                        self.replicas.remove(pos);
                        changed = true;
                    }
                }
                MembershipChange::Join(id) => {
                    if self.rank_of(id).is_some() || self.replicas.is_empty() {
                        continue;
                    }
                    // The joiner syncs to the group's current state: rank 0
                    // donates its trainer state and stream position. Any
                    // parked state for this id is superseded.
                    let mut donor = State::new();
                    self.replicas[0].trainer.save_state(&mut donor);
                    let mut trainer = (self.factory)(self.seed);
                    trainer
                        .load_state(&donor)
                        .expect("join state sync must round-trip");
                    let cursor = self.replicas[0].cursor.clone();
                    self.parked.remove(&id);
                    let pos = self.replicas.partition_point(|r| r.id < id);
                    self.replicas.insert(
                        pos,
                        Replica {
                            id,
                            trainer,
                            cursor,
                        },
                    );
                    changed = true;
                }
            }
        }
        if changed {
            self.reshards += 1;
            let world = self.replicas.len();
            for (rank, replica) in self.replicas.iter_mut().enumerate() {
                replica.cursor.set_shard(world.max(1), rank);
            }
        }
    }

    /// One attempt at `epoch`. Recovery actions that restore the boundary
    /// return [`Attempt::Replay`]; the caller loops until [`Attempt::Done`].
    fn try_epoch(
        &mut self,
        epoch: usize,
        cfg: &DistConfig,
        boundary: &mut Vec<BoundaryEntry>,
    ) -> Attempt {
        let steps = self.replicas[0].cursor.batches_per_epoch();
        let mut total = 0.0f32;
        let mut count = 0usize;
        for step in 1..=steps {
            let mut delay: u64 = 0;
            // Control faults strike before the step's compute.
            for (i, &inj) in cfg.schedule.injections().iter().enumerate() {
                if self.consumed[i] || inj.epoch != epoch || inj.step != step {
                    continue;
                }
                if self.rank_of(inj.worker).is_none() {
                    // The target already left or was excluded.
                    self.consumed[i] = true;
                    continue;
                }
                match inj.kind {
                    DistFaultKind::WorkerDrop => {
                        self.consumed[i] = true;
                        let world_after = self.replicas.len() - 1;
                        self.record(
                            epoch,
                            step,
                            inj.worker,
                            inj.kind,
                            DistAction::ExcludeAndReshard,
                            world_after,
                        );
                        if !self.admit_recovery(&cfg.policy) {
                            return Attempt::Abort;
                        }
                        self.exclude(inj.worker, boundary);
                        if self.replicas.is_empty() {
                            return Attempt::Abort;
                        }
                        self.restore_boundary(boundary);
                        return Attempt::Replay;
                    }
                    DistFaultKind::StragglerDelay { ticks } => {
                        self.consumed[i] = true;
                        let exclude = cfg.policy.straggler == DistAction::ExcludeAndReshard
                            || ticks >= cfg.policy.straggler_exclude_after;
                        if exclude && self.replicas.len() > 1 {
                            let world_after = self.replicas.len() - 1;
                            self.record(
                                epoch,
                                step,
                                inj.worker,
                                inj.kind,
                                DistAction::ExcludeAndReshard,
                                world_after,
                            );
                            if !self.admit_recovery(&cfg.policy) {
                                return Attempt::Abort;
                            }
                            self.exclude(inj.worker, boundary);
                            self.restore_boundary(boundary);
                            return Attempt::Replay;
                        }
                        self.record(
                            epoch,
                            step,
                            inj.worker,
                            inj.kind,
                            DistAction::AbsorbDelay,
                            self.replicas.len(),
                        );
                        delay = delay.max(ticks);
                    }
                    // Message faults strike after compute, below.
                    DistFaultKind::CorruptGradShard | DistFaultKind::LostContribution => {}
                }
            }
            // Compute: strict rank order, so results never depend on
            // scheduling. Message faults apply to the captured shard.
            let mut shards: Vec<GradShard> = Vec::new();
            let mut lost: Vec<WorkerId> = Vec::new();
            for rank in 0..self.replicas.len() {
                let id = self.replicas[rank].id;
                let local = self.replicas[rank].cursor.next_batch();
                if local.is_empty() {
                    continue;
                }
                let loss = self.replicas[rank].trainer.forward_backward(&local);
                let grads = gather_grads(self.replicas[rank].trainer.as_ref());
                let mut shard = GradShard::capture(rank, local.len(), loss, grads);
                let mut dropped = false;
                for (i, &inj) in cfg.schedule.injections().iter().enumerate() {
                    if self.consumed[i]
                        || inj.epoch != epoch
                        || inj.step != step
                        || inj.worker != id
                    {
                        continue;
                    }
                    match inj.kind {
                        DistFaultKind::CorruptGradShard => {
                            self.consumed[i] = true;
                            shard.poison();
                        }
                        DistFaultKind::LostContribution => {
                            self.consumed[i] = true;
                            dropped = true;
                        }
                        _ => {}
                    }
                }
                if dropped {
                    lost.push(id);
                } else {
                    shards.push(shard);
                }
            }
            // Detection and recovery: lost contributions …
            for id in lost {
                let action = match cfg.policy.lost_contribution {
                    DistAction::AbsorbDelay => DistAction::RollbackToSnapshot,
                    a => a,
                };
                match action {
                    DistAction::QuarantineShard => {
                        // The contribution is already absent; the reduce
                        // reweights over the survivors.
                        self.record(
                            epoch,
                            step,
                            id,
                            DistFaultKind::LostContribution,
                            DistAction::QuarantineShard,
                            self.replicas.len(),
                        );
                    }
                    DistAction::ExcludeAndReshard => {
                        let world_after = self.replicas.len() - 1;
                        self.record(
                            epoch,
                            step,
                            id,
                            DistFaultKind::LostContribution,
                            DistAction::ExcludeAndReshard,
                            world_after,
                        );
                        if !self.admit_recovery(&cfg.policy) {
                            return Attempt::Abort;
                        }
                        self.exclude(id, boundary);
                        if self.replicas.is_empty() {
                            return Attempt::Abort;
                        }
                        self.restore_boundary(boundary);
                        return Attempt::Replay;
                    }
                    _ => {
                        self.record(
                            epoch,
                            step,
                            id,
                            DistFaultKind::LostContribution,
                            DistAction::RollbackToSnapshot,
                            self.replicas.len(),
                        );
                        if !self.admit_recovery(&cfg.policy) {
                            return Attempt::Abort;
                        }
                        self.restore_boundary(boundary);
                        return Attempt::Replay;
                    }
                }
            }
            // … and corrupted shards, caught by the CRC sentinel.
            if shards.iter().any(|s| !s.verify()) {
                let action = match cfg.policy.corrupt_shard {
                    DistAction::AbsorbDelay => DistAction::QuarantineShard,
                    a => a,
                };
                let bad_ids: Vec<WorkerId> = shards
                    .iter()
                    .filter(|s| !s.verify())
                    .map(|s| self.replicas[s.rank()].id)
                    .collect();
                match action {
                    DistAction::QuarantineShard => {
                        for id in bad_ids {
                            self.record(
                                epoch,
                                step,
                                id,
                                DistFaultKind::CorruptGradShard,
                                DistAction::QuarantineShard,
                                self.replicas.len(),
                            );
                        }
                        shards.retain(GradShard::verify);
                    }
                    DistAction::ExcludeAndReshard => {
                        let id = bad_ids[0];
                        let world_after = self.replicas.len() - 1;
                        self.record(
                            epoch,
                            step,
                            id,
                            DistFaultKind::CorruptGradShard,
                            DistAction::ExcludeAndReshard,
                            world_after,
                        );
                        if !self.admit_recovery(&cfg.policy) {
                            return Attempt::Abort;
                        }
                        self.exclude(id, boundary);
                        if self.replicas.is_empty() {
                            return Attempt::Abort;
                        }
                        self.restore_boundary(boundary);
                        return Attempt::Replay;
                    }
                    _ => {
                        let id = bad_ids[0];
                        self.record(
                            epoch,
                            step,
                            id,
                            DistFaultKind::CorruptGradShard,
                            DistAction::RollbackToSnapshot,
                            self.replicas.len(),
                        );
                        if !self.admit_recovery(&cfg.policy) {
                            return Attempt::Abort;
                        }
                        self.restore_boundary(boundary);
                        return Attempt::Replay;
                    }
                }
            }
            // All-reduce and synchronized update.
            if !shards.is_empty() {
                let refs: Vec<&GradShard> = shards.iter().collect();
                let (reduced, step_loss) = tree_reduce(&refs);
                for replica in &mut self.replicas {
                    scatter_grads(replica.trainer.as_mut(), &reduced);
                    replica.trainer.apply_update();
                }
                total += step_loss;
                count += 1;
            }
            self.logical_time += 1 + delay;
        }
        Attempt::Done(total / count.max(1) as f32)
    }

    fn run_loop(
        &mut self,
        target_met: &dyn Fn(f64) -> bool,
        params: &RunParams,
        cfg: &DistConfig,
        mut sink: Option<&mut dyn CheckpointSink>,
    ) {
        'epochs: for epoch in (self.epochs_run + 1)..=params.max_epochs {
            self.apply_membership(epoch, &cfg.membership);
            if self.replicas.is_empty() {
                self.aborted = true;
                break;
            }
            let mut boundary = self.capture_boundary();
            let mean_loss = loop {
                match self.try_epoch(epoch, cfg, &mut boundary) {
                    Attempt::Done(loss) => break loss,
                    Attempt::Replay => continue,
                    Attempt::Abort => {
                        self.aborted = true;
                        break 'epochs;
                    }
                }
            };
            self.loss_trace.push(mean_loss);
            self.epochs_run = epoch;
            self.world_trace.push((epoch, self.replicas.len()));
            if epoch % params.eval_every.max(1) == 0 || epoch == params.max_epochs {
                let quality = self.replicas[0].trainer.evaluate();
                self.quality_trace.push((epoch, quality));
                self.final_quality = quality;
                if target_met(quality) {
                    self.epochs_to_target = Some(epoch);
                }
            }
            if let Some(sink) = sink.as_deref_mut() {
                if params.snapshot_every > 0 && epoch % params.snapshot_every == 0 {
                    // Saving is best effort: a failed save costs the older
                    // resume point, never the run.
                    let _ = sink.save(epoch, &self.to_snapshot().to_bytes());
                }
            }
            if self.epochs_to_target.is_some() {
                break;
            }
        }
    }

    fn to_snapshot(&self) -> SnapshotFile {
        let mut file = SnapshotFile::new();
        let mut meta = State::new();
        meta.put_str("format", FORMAT_TAG);
        meta.put_u64("seed", self.seed);
        meta.put_usize("initial_world", self.initial_world);
        meta.put_u64s(
            "live",
            self.replicas.iter().map(|r| u64::from(r.id)).collect(),
        );
        meta.put_u64s(
            "parked",
            self.parked.keys().map(|&id| u64::from(id)).collect(),
        );
        file.push("meta", meta);
        let mut prog = State::new();
        prog.put_usize("epochs_run", self.epochs_run);
        prog.put_f32s(
            "loss_trace",
            &[self.loss_trace.len()],
            self.loss_trace.clone(),
        );
        prog.put_u64s(
            "quality_epochs",
            self.quality_trace.iter().map(|&(e, _)| e as u64).collect(),
        );
        prog.put_f64s(
            "quality_values",
            self.quality_trace.iter().map(|&(_, q)| q).collect(),
        );
        prog.put_u64(
            "epochs_to_target",
            self.epochs_to_target.map_or(u64::MAX, |e| e as u64),
        );
        prog.put_f64("final_quality", self.final_quality);
        prog.put_u64s(
            "world_epochs",
            self.world_trace.iter().map(|&(e, _)| e as u64).collect(),
        );
        prog.put_u64s(
            "world_sizes",
            self.world_trace.iter().map(|&(_, w)| w as u64).collect(),
        );
        prog.put_usize("reshards", self.reshards);
        prog.put_u64("logical_time", self.logical_time);
        prog.put_usize("recoveries", self.recoveries);
        prog.put_bool("aborted", self.aborted);
        prog.put_u64s(
            "fault_epochs",
            self.faults.iter().map(|f| f.epoch as u64).collect(),
        );
        prog.put_u64s(
            "fault_steps",
            self.faults.iter().map(|f| f.step as u64).collect(),
        );
        prog.put_u64s(
            "fault_workers",
            self.faults.iter().map(|f| u64::from(f.worker)).collect(),
        );
        prog.put_u64s(
            "fault_kinds",
            self.faults.iter().map(|f| kind_code(f.fault)).collect(),
        );
        prog.put_u64s(
            "fault_ticks",
            self.faults
                .iter()
                .map(|f| match f.fault {
                    DistFaultKind::StragglerDelay { ticks } => ticks,
                    _ => 0,
                })
                .collect(),
        );
        prog.put_u64s(
            "fault_actions",
            self.faults.iter().map(|f| action_code(f.action)).collect(),
        );
        prog.put_u64s(
            "fault_world_after",
            self.faults.iter().map(|f| f.world_after as u64).collect(),
        );
        file.push("progress", prog);
        for replica in &self.replicas {
            let mut trainer = State::new();
            replica.trainer.save_state(&mut trainer);
            file.push(format!("worker-{}", replica.id), trainer);
            let mut cursor = State::new();
            replica.cursor.snapshot(&mut cursor, "");
            file.push(format!("cursor-{}", replica.id), cursor);
        }
        for (id, (trainer, cursor)) in &self.parked {
            file.push(format!("parked-{id}"), trainer.clone());
            file.push(format!("parked-cursor-{id}"), cursor.clone());
        }
        file
    }

    fn from_snapshot(
        factory: &'a ReplicaFactory<'a>,
        seed: u64,
        cfg: &DistConfig,
        bytes: &[u8],
    ) -> Result<Self, CkptError> {
        let file = SnapshotFile::from_bytes(bytes)?;
        let meta = file.section("meta")?;
        if meta.str("format")? != FORMAT_TAG {
            return Err(CkptError::MetaMismatch {
                what: "snapshot is not an aibench-dist group snapshot".into(),
            });
        }
        if meta.u64("seed")? != seed {
            return Err(CkptError::MetaMismatch {
                what: format!("snapshot seed {} != requested {seed}", meta.u64("seed")?),
            });
        }
        if meta.usize("initial_world")? != cfg.world {
            return Err(CkptError::MetaMismatch {
                what: format!(
                    "snapshot initial world {} != configured {}",
                    meta.usize("initial_world")?,
                    cfg.world
                ),
            });
        }
        let live = meta.u64s("live")?.to_vec();
        if live.is_empty() {
            return Err(CkptError::MetaMismatch {
                what: "snapshot has no live workers".into(),
            });
        }
        let world = live.len();
        let mut replicas = Vec::with_capacity(world);
        for (rank, &id) in live.iter().enumerate() {
            let id = id as WorkerId;
            let mut trainer = factory(seed);
            trainer.load_state(file.section(&format!("worker-{id}"))?)?;
            let mut cursor = ShardedCursor::new(
                trainer.train_len(),
                trainer.global_batch(),
                trainer.data_rng(),
                world,
                rank,
            );
            cursor.restore(file.section(&format!("cursor-{id}"))?, "")?;
            cursor.set_shard(world, rank);
            replicas.push(Replica {
                id,
                trainer,
                cursor,
            });
        }
        let mut parked = BTreeMap::new();
        for &id in meta.u64s("parked")? {
            let id = id as WorkerId;
            parked.insert(
                id,
                (
                    file.section(&format!("parked-{id}"))?.clone(),
                    file.section(&format!("parked-cursor-{id}"))?.clone(),
                ),
            );
        }
        let prog = file.section("progress")?;
        let quality_epochs = prog.u64s("quality_epochs")?;
        let quality_values = prog.f64s("quality_values")?;
        if quality_epochs.len() != quality_values.len() {
            return Err(CkptError::MetaMismatch {
                what: "quality trace arrays disagree in length".into(),
            });
        }
        let world_epochs = prog.u64s("world_epochs")?;
        let world_sizes = prog.u64s("world_sizes")?;
        if world_epochs.len() != world_sizes.len() {
            return Err(CkptError::MetaMismatch {
                what: "world trace arrays disagree in length".into(),
            });
        }
        let faults = decode_faults(prog)?;
        let epochs_to_target = match prog.u64("epochs_to_target")? {
            u64::MAX => None,
            e => Some(e as usize),
        };
        Ok(Session {
            factory,
            seed,
            initial_world: cfg.world,
            replicas,
            parked,
            consumed: vec![false; cfg.schedule.injections().len()],
            recoveries: prog.usize("recoveries")?,
            epochs_run: prog.usize("epochs_run")?,
            epochs_to_target,
            quality_trace: quality_epochs
                .iter()
                .zip(quality_values)
                .map(|(&e, &q)| (e as usize, q))
                .collect(),
            loss_trace: prog.f32s("loss_trace")?.1.to_vec(),
            final_quality: prog.f64("final_quality")?,
            world_trace: world_epochs
                .iter()
                .zip(world_sizes)
                .map(|(&e, &w)| (e as usize, w as usize))
                .collect(),
            faults,
            reshards: prog.usize("reshards")?,
            logical_time: prog.u64("logical_time")?,
            resumed_from: None,
            aborted: prog.bool("aborted")?,
        })
    }
}

fn kind_code(kind: DistFaultKind) -> u64 {
    match kind {
        DistFaultKind::StragglerDelay { .. } => 0,
        DistFaultKind::WorkerDrop => 1,
        DistFaultKind::CorruptGradShard => 2,
        DistFaultKind::LostContribution => 3,
    }
}

fn action_code(action: DistAction) -> u64 {
    match action {
        DistAction::ExcludeAndReshard => 0,
        DistAction::RollbackToSnapshot => 1,
        DistAction::QuarantineShard => 2,
        DistAction::AbsorbDelay => 3,
    }
}

fn decode_faults(prog: &State) -> Result<Vec<DistFaultEvent>, CkptError> {
    let epochs = prog.u64s("fault_epochs")?;
    let steps = prog.u64s("fault_steps")?;
    let workers = prog.u64s("fault_workers")?;
    let kinds = prog.u64s("fault_kinds")?;
    let ticks = prog.u64s("fault_ticks")?;
    let actions = prog.u64s("fault_actions")?;
    let world_after = prog.u64s("fault_world_after")?;
    let n = epochs.len();
    if [steps, workers, kinds, ticks, actions, world_after]
        .iter()
        .any(|a| a.len() != n)
    {
        return Err(CkptError::MetaMismatch {
            what: "fault log arrays disagree in length".into(),
        });
    }
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let fault = match kinds[i] {
            0 => DistFaultKind::StragglerDelay { ticks: ticks[i] },
            1 => DistFaultKind::WorkerDrop,
            2 => DistFaultKind::CorruptGradShard,
            3 => DistFaultKind::LostContribution,
            other => {
                return Err(CkptError::MetaMismatch {
                    what: format!("unknown fault kind code {other}"),
                })
            }
        };
        let action = match actions[i] {
            0 => DistAction::ExcludeAndReshard,
            1 => DistAction::RollbackToSnapshot,
            2 => DistAction::QuarantineShard,
            3 => DistAction::AbsorbDelay,
            other => {
                return Err(CkptError::MetaMismatch {
                    what: format!("unknown fault action code {other}"),
                })
            }
        };
        out.push(DistFaultEvent {
            epoch: epochs[i] as usize,
            step: steps[i] as usize,
            worker: workers[i] as WorkerId,
            fault,
            action,
            world_after: world_after[i] as usize,
        });
    }
    Ok(out)
}

/// Flattens every parameter gradient, in [`aibench_models::Trainer::params`]
/// order, into one vector.
fn gather_grads(trainer: &dyn DataParallel) -> Vec<f32> {
    let mut out = Vec::new();
    for param in trainer.params() {
        out.extend_from_slice(param.grad().data());
    }
    out
}

/// Writes the reduced global gradient back over every parameter gradient.
fn scatter_grads(trainer: &mut dyn DataParallel, reduced: &[f32]) {
    let mut offset = 0;
    for param in trainer.params() {
        let mut grad = param.grad_mut();
        let data = grad.data_mut();
        data.copy_from_slice(&reduced[offset..offset + data.len()]);
        offset += data.len();
    }
    assert_eq!(offset, reduced.len(), "reduced gradient length mismatch");
}

/// Runs `max_epochs` of simulated data-parallel training (or until
/// `target_met` holds at an evaluation), starting `cfg.world` workers from
/// `seed`. See the module docs for the determinism contract.
pub fn run_data_parallel(
    factory: &ReplicaFactory<'_>,
    seed: u64,
    target_met: &dyn Fn(f64) -> bool,
    params: &RunParams,
    cfg: &DistConfig,
) -> DistRunResult {
    let mut session = Session::fresh(factory, seed, cfg);
    session.run_loop(target_met, params, cfg, None);
    session.into_result()
}

/// Like [`run_data_parallel`], but resumes from the newest valid snapshot in
/// `sink` (if any) and saves a group snapshot every
/// [`RunParams::snapshot_every`] epochs.
///
/// Snapshots are cut at epoch boundaries only, so a resumed run re-enters
/// its next epoch exactly where an uninterrupted run would, re-fires the
/// same injections, and produces a [`DistRunResult`] that is
/// `deterministic_eq` to the uninterrupted one.
pub fn run_data_parallel_resumable(
    factory: &ReplicaFactory<'_>,
    seed: u64,
    target_met: &dyn Fn(f64) -> bool,
    params: &RunParams,
    cfg: &DistConfig,
    sink: &mut dyn CheckpointSink,
) -> DistRunResult {
    let mut resumed = None;
    for &epoch in sink.epochs().iter().rev() {
        if let Ok(Some(bytes)) = sink.load(epoch) {
            if let Ok(session) = Session::from_snapshot(factory, seed, cfg, &bytes) {
                resumed = Some((epoch, session));
                break;
            }
        }
    }
    let mut session = match resumed {
        Some((epoch, mut session)) => {
            session.resumed_from = Some(epoch);
            session
        }
        None => Session::fresh(factory, seed, cfg),
    };
    session.run_loop(target_met, params, cfg, Some(sink));
    session.into_result()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aibench_models::scaled::SpatialTransformer;

    fn factory(seed: u64) -> Box<dyn DataParallel> {
        Box::new(SpatialTransformer::new(seed))
    }

    fn short(max_epochs: usize) -> RunParams {
        RunParams {
            max_epochs,
            eval_every: 1,
            snapshot_every: 0,
        }
    }

    #[test]
    fn static_group_trains_and_traces_world() {
        let cfg = DistConfig::with_world(2);
        let res = run_data_parallel(&factory, 7, &|_| false, &short(2), &cfg);
        assert_eq!(res.epochs_run, 2);
        assert_eq!(res.world_trace, vec![(1, 2), (2, 2)]);
        assert_eq!(res.loss_trace.len(), 2);
        assert!(res.loss_trace.iter().all(|l| l.is_finite()));
        assert!(!res.aborted);
        assert_eq!(res.reshards, 0);
        assert_eq!(res.logical_time, 2 * 6);
    }

    #[test]
    fn planned_leave_and_join_reshard_the_group() {
        let mut cfg = DistConfig::with_world(3);
        cfg.membership = MembershipPlan::empty().leave(2, 1).join(3, 5);
        let res = run_data_parallel(&factory, 3, &|_| false, &short(3), &cfg);
        assert_eq!(res.world_trace, vec![(1, 3), (2, 2), (3, 3)]);
        assert_eq!(res.reshards, 2);
        assert!(!res.aborted);
    }

    #[test]
    fn everyone_leaving_aborts() {
        let mut cfg = DistConfig::with_world(1);
        cfg.membership = MembershipPlan::empty().leave(2, 0);
        let res = run_data_parallel(&factory, 3, &|_| false, &short(4), &cfg);
        assert!(res.aborted);
        assert_eq!(res.epochs_run, 1);
    }

    #[test]
    fn recovery_budget_exhaustion_aborts() {
        let mut cfg = DistConfig::with_world(2);
        cfg.policy.max_recoveries = 0;
        cfg.schedule = DistSchedule::empty().inject(1, 2, 1, DistFaultKind::WorkerDrop);
        let res = run_data_parallel(&factory, 3, &|_| false, &short(2), &cfg);
        assert!(res.aborted);
        assert_eq!(
            res.fault_signatures(),
            vec!["e1s2w1:worker-drop>exclude-reshard"]
        );
    }

    #[test]
    fn quarantine_keeps_membership() {
        let mut cfg = DistConfig::with_world(2);
        cfg.schedule = DistSchedule::empty().inject(1, 1, 0, DistFaultKind::CorruptGradShard);
        let res = run_data_parallel(&factory, 5, &|_| false, &short(1), &cfg);
        assert!(!res.aborted);
        assert_eq!(res.world_trace, vec![(1, 2)]);
        assert_eq!(
            res.fault_signatures(),
            vec!["e1s1w0:corrupt-grad-shard>shard-quarantine"]
        );
        assert_eq!(res.reshards, 0);
    }
}

//! Simulated deterministic data-parallel training for the AIBench suite.
//!
//! `aibench-dist` runs N simulated workers over one shared shuffled batch
//! stream: each rank takes a strided shard of every global batch
//! (`aibench_data::shard`), computes its local gradient through the
//! [`aibench_models::DataParallel`] hooks, and the group combines
//! contributions with an order-stable weighted tree all-reduce before every
//! replica applies the identical update. Three robustness mechanisms ride
//! on that base:
//!
//! * **Elastic membership** — workers join and leave at epoch boundaries
//!   ([`MembershipPlan`]); the group re-shards deterministically and a
//!   joiner syncs to the group's current state.
//! * **Fault injection** — seeded, replayable worker faults
//!   ([`DistSchedule`]): straggler delays, mid-epoch drops, corrupted
//!   gradient shards (CRC sentinel), lost all-reduce contributions.
//! * **Recovery** — a total [`DistPolicy`] maps every fault to exclusion,
//!   rollback, quarantine, or absorption, driven from per-epoch boundary
//!   snapshots; [`run_data_parallel_resumable`] additionally persists group
//!   snapshots through any `aibench_ckpt::CheckpointSink`.
//!
//! The headline guarantees, enforced by `tests/dist_determinism.rs`: a run
//! is bitwise reproducible for a fixed world size at any thread count, a
//! one-worker group is bit-identical to sequential `run_to_quality`
//! training, and fault/elastic runs replay and resume bit-identically.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod fault;
pub mod membership;
pub mod reduce;

pub use engine::{
    run_data_parallel, run_data_parallel_resumable, DistConfig, DistRunResult, ReplicaFactory,
    RunParams,
};
pub use fault::{
    DistAction, DistFaultEvent, DistFaultKind, DistInjection, DistPolicy, DistSchedule,
};
pub use membership::{MembershipChange, MembershipEvent, MembershipPlan, WorkerId};
pub use reduce::{crc_of, tree_reduce, GradShard};

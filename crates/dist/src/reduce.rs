//! Order-stable weighted tree all-reduce over flattened gradient vectors.
//!
//! The reduction recipe is fixed by the *logical* shape of the group, never
//! by thread count: contributions are taken in ascending rank order, each is
//! scaled by its example-count weight, and the scaled buffers are folded
//! pairwise in a fixed-fanout-2 stride-doubling tree. Elementwise adds go
//! through `parallel_slice_mut` with the same chunk size `aibench-parallel`
//! uses for reductions, so each output element is produced by exactly one
//! deterministic sequence of operations regardless of `AIBENCH_THREADS`.
//!
//! A one-worker group reduces to multiplying by exactly `1.0`, which is a
//! bitwise identity on finite floats — the basis of the runner's
//! single-worker-equivalence guarantee.

use aibench_ckpt::crc32;
use aibench_parallel::{parallel_slice_mut, REDUCE_CHUNK};

/// One worker's contribution to a step's all-reduce: its flattened gradient,
/// the number of examples it covered, its local mean loss, and a CRC taken
/// at capture time so in-flight corruption is detectable.
#[derive(Debug, Clone)]
pub struct GradShard {
    rank: usize,
    examples: usize,
    loss: f32,
    data: Vec<f32>,
    crc: u32,
}

impl GradShard {
    /// Captures a contribution, stamping it with a CRC of the gradient bytes.
    pub fn capture(rank: usize, examples: usize, loss: f32, data: Vec<f32>) -> Self {
        let crc = crc_of(&data);
        GradShard {
            rank,
            examples,
            loss,
            data,
            crc,
        }
    }

    /// The contributing worker's rank within the group.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of examples this contribution covers.
    pub fn examples(&self) -> usize {
        self.examples
    }

    /// The contribution's local mean training loss.
    pub fn loss(&self) -> f32 {
        self.loss
    }

    /// The flattened gradient payload.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Whether the payload still matches the CRC stamped at capture.
    pub fn verify(&self) -> bool {
        crc_of(&self.data) == self.crc
    }

    /// Flips bits in the payload *without* refreshing the CRC — the
    /// fault-injection hook for a gradient shard corrupted in flight.
    pub fn poison(&mut self) {
        for x in self.data.iter_mut().take(3) {
            *x = f32::from_bits(x.to_bits() ^ 0x4000_0001);
        }
        if self.data.is_empty() {
            // A degenerate empty payload can still present a bad CRC.
            self.crc = !self.crc;
        }
    }
}

/// CRC-32 over the little-endian byte image of a float slice.
pub fn crc_of(data: &[f32]) -> u32 {
    let mut bytes = Vec::with_capacity(data.len() * 4);
    for x in data {
        bytes.extend_from_slice(&x.to_bits().to_le_bytes());
    }
    crc32(&bytes)
}

/// Reduces the group's surviving contributions into one global gradient and
/// one global mean loss, weighted by example counts.
///
/// Panics if `shards` is empty or payload lengths disagree.
pub fn tree_reduce(shards: &[&GradShard]) -> (Vec<f32>, f32) {
    assert!(!shards.is_empty(), "tree_reduce over an empty group");
    let len = shards[0].data.len();
    assert!(
        shards.iter().all(|s| s.data.len() == len),
        "gradient shard lengths disagree"
    );
    let mut ordered: Vec<&GradShard> = shards.to_vec();
    ordered.sort_by_key(|s| s.rank);
    let total: usize = ordered.iter().map(|s| s.examples).sum();
    let total_f = total as f32;
    let mut bufs = Vec::with_capacity(ordered.len());
    let mut losses = Vec::with_capacity(ordered.len());
    for s in &ordered {
        let w = s.examples as f32 / total_f;
        bufs.push(scaled(&s.data, w));
        losses.push(w * s.loss);
    }
    (tree_fold(bufs), tree_fold_scalar(losses))
}

fn scaled(data: &[f32], w: f32) -> Vec<f32> {
    let mut out = data.to_vec();
    parallel_slice_mut(&mut out, REDUCE_CHUNK, |_, piece| {
        for x in piece {
            *x *= w;
        }
    });
    out
}

fn add_into(acc: &mut [f32], other: &[f32]) {
    parallel_slice_mut(acc, REDUCE_CHUNK, |range, piece| {
        for (x, y) in piece.iter_mut().zip(&other[range]) {
            *x += *y;
        }
    });
}

fn tree_fold(mut bufs: Vec<Vec<f32>>) -> Vec<f32> {
    while bufs.len() > 1 {
        let mut next = Vec::with_capacity(bufs.len().div_ceil(2));
        let mut it = bufs.into_iter();
        while let Some(mut a) = it.next() {
            if let Some(b) = it.next() {
                add_into(&mut a, &b);
            }
            next.push(a);
        }
        bufs = next;
    }
    bufs.pop().expect("tree_fold over an empty list")
}

fn tree_fold_scalar(mut vals: Vec<f32>) -> f32 {
    while vals.len() > 1 {
        let mut next = Vec::with_capacity(vals.len().div_ceil(2));
        let mut it = vals.into_iter();
        while let Some(a) = it.next() {
            next.push(match it.next() {
                Some(b) => a + b,
                None => a,
            });
        }
        vals = next;
    }
    vals.pop().expect("tree_fold_scalar over an empty list")
}

#[cfg(test)]
mod tests {
    use super::*;
    use aibench_parallel::set_threads;

    fn shard(rank: usize, examples: usize, seed: u64, len: usize) -> GradShard {
        let mut rng = aibench_tensor::Rng::seed_from(seed);
        let data: Vec<f32> = (0..len)
            .map(|_| rng.below(1000) as f32 / 7.0 - 60.0)
            .collect();
        GradShard::capture(rank, examples, seed as f32 / 3.0, data)
    }

    #[test]
    fn single_shard_is_bitwise_identity() {
        let s = shard(0, 32, 9, 1033);
        let (out, loss) = tree_reduce(&[&s]);
        assert_eq!(
            out.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            s.data().iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(loss.to_bits(), s.loss().to_bits());
    }

    #[test]
    fn reduction_is_thread_count_invariant() {
        let shards: Vec<GradShard> = (0..5)
            .map(|r| shard(r, 8 - r % 3, r as u64 + 1, 9000))
            .collect();
        let refs: Vec<&GradShard> = shards.iter().collect();
        set_threads(1);
        let (a, la) = tree_reduce(&refs);
        set_threads(7);
        let (b, lb) = tree_reduce(&refs);
        set_threads(1);
        assert_eq!(la.to_bits(), lb.to_bits());
        assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn rank_order_not_arrival_order_fixes_the_result() {
        let shards: Vec<GradShard> = (0..4).map(|r| shard(r, 6, r as u64 + 11, 513)).collect();
        let fwd: Vec<&GradShard> = shards.iter().collect();
        let rev: Vec<&GradShard> = shards.iter().rev().collect();
        let (a, la) = tree_reduce(&fwd);
        let (b, lb) = tree_reduce(&rev);
        assert_eq!(la.to_bits(), lb.to_bits());
        assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn poison_breaks_crc() {
        let mut s = shard(2, 4, 3, 64);
        assert!(s.verify());
        s.poison();
        assert!(!s.verify());
    }

    #[test]
    fn weights_sum_examples() {
        let a = shard(0, 30, 1, 10);
        let b = shard(1, 10, 2, 10);
        let (out, _) = tree_reduce(&[&a, &b]);
        let expect: Vec<f32> = a
            .data()
            .iter()
            .zip(b.data())
            .map(|(x, y)| x * 0.75 + y * 0.25)
            .collect();
        assert!(out
            .iter()
            .zip(&expect)
            .all(|(x, y)| x.to_bits() == y.to_bits()));
    }
}

//! Vendored offline stub of the `proptest` API surface this workspace's
//! property tests use.
//!
//! The real `proptest` crate cannot be fetched in the offline build
//! environment, so this stub reimplements exactly the subset the tests
//! consume: the [`proptest!`] macro, [`prop_assert!`]/[`prop_assert_eq!`],
//! [`ProptestConfig::with_cases`], range strategies over the numeric
//! primitives, `prop::collection::vec`, and `prop::sample::select`.
//!
//! Semantics differ from upstream in one deliberate way: sampling is
//! deterministic (seeded from the test name), so failures reproduce
//! without a persistence file, and there is no shrinking — a failing case
//! panics with the standard assertion message instead.

#![forbid(unsafe_code)]

/// Deterministic splitmix64 generator driving all strategy sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// FNV-1a hash of a test name, used as the deterministic seed.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A source of random values of one type (stub of proptest's `Strategy`).
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty float range strategy");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f64, f32);

impl Strategy for std::ops::Range<i64> {
    type Value = i64;
    fn sample(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty integer range strategy");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(rng.below(span) as i64)
    }
}

impl Strategy for std::ops::Range<i32> {
    type Value = i32;
    fn sample(&self, rng: &mut TestRng) -> i32 {
        assert!(self.start < self.end, "empty integer range strategy");
        let span = (self.end as i64 - self.start as i64) as u64;
        (self.start as i64 + rng.below(span) as i64) as i32
    }
}

/// Run-count configuration (stub of proptest's `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` sampled cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Strategy combinators, mirroring proptest's `prop` module paths.
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Length specification for [`vec()`]: a range or an exact count.
        pub struct SizeRange {
            min: usize,
            max_exclusive: usize,
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                SizeRange {
                    min: r.start,
                    max_exclusive: r.end,
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange {
                    min: n,
                    max_exclusive: n + 1,
                }
            }
        }

        /// Strategy for `Vec`s with lengths drawn from `len`.
        pub struct VecStrategy<S> {
            elem: S,
            len: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = (self.len.min..self.len.max_exclusive).sample(rng);
                (0..n).map(|_| self.elem.sample(rng)).collect()
            }
        }

        /// Vectors of values from `elem` with a length in `len`.
        pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                elem,
                len: len.into(),
            }
        }
    }

    /// Sampling strategies (`prop::sample::select`).
    pub mod sample {
        use crate::{Strategy, TestRng};

        /// Strategy choosing uniformly from a fixed list.
        pub struct Select<T> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut TestRng) -> T {
                assert!(!self.options.is_empty(), "select over an empty list");
                self.options[rng.below(self.options.len() as u64) as usize].clone()
            }
        }

        /// Chooses uniformly among `options`.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            Select { options }
        }
    }
}

/// Asserts a condition inside a property test body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares a block of property tests; each runs its body over
/// deterministically sampled cases.
#[macro_export]
macro_rules! proptest {
    (@run $cfg:expr; $(
        #[test]
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::Strategy::sample(&$strategy, &mut __rng);)*
                $body
            }
        }
    )*};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @run $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @run $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Everything the tests import (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_within_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..1000 {
            let x = Strategy::sample(&(3usize..9), &mut rng);
            assert!((3..9).contains(&x));
            let f = Strategy::sample(&(0.5f64..2.5), &mut rng);
            assert!((0.5..2.5).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let mut rng = crate::TestRng::new(11);
        let s = prop::collection::vec(0u64..4, 2..6);
        for _ in 0..200 {
            let v = Strategy::sample(&s, &mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn select_draws_every_option() {
        let mut rng = crate::TestRng::new(13);
        let s = prop::sample::select(vec![1, 2, 3]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[Strategy::sample(&s, &mut rng) - 1] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_binds_sampled_arguments(n in 1usize..5, x in 0.0f64..1.0) {
            prop_assert!((1..5).contains(&n));
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert_eq!(n, n);
        }
    }
}

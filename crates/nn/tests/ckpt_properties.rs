//! Property tests: optimizer checkpoints round-trip bit-exactly through the
//! binary container for arbitrary parameter shapes and values, and a
//! restored optimizer continues training identically to one that never
//! stopped.

use aibench_autograd::Param;
use aibench_ckpt::{Restore as _, Snapshot as _, SnapshotFile, State};
use aibench_nn::{Adam, Optimizer, RmsProp, Sgd};
use aibench_tensor::{Rng, Tensor};
use proptest::prelude::*;

/// Builds a parameter list with the given shapes, values drawn from `rng`,
/// and gradients already accumulated (so moment buffers get exercised).
fn make_params(shapes: &[Vec<usize>], rng: &mut Rng) -> Vec<Param> {
    shapes
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let p = Param::new(format!("p{i}"), Tensor::randn(s, rng));
            p.accumulate_grad(&Tensor::randn(s, rng));
            p
        })
        .collect()
}

/// Independent zero-initialized parameters with the same shapes — cloning a
/// `Param` only clones the handle, so the restore target must be built
/// from scratch for the test to prove anything.
fn blank_params(shapes: &[Vec<usize>]) -> Vec<Param> {
    shapes
        .iter()
        .enumerate()
        .map(|(i, s)| Param::new(format!("p{i}"), Tensor::zeros(s)))
        .collect()
}

/// Steps `opt` a few times to populate moments, snapshots it through the
/// full binary format, restores into `fresh`, and asserts the two produce
/// bit-identical parameters after further steps.
fn assert_resume_parity<O: Optimizer + aibench_ckpt::Snapshot + aibench_ckpt::Restore>(
    mut opt: O,
    mut fresh: O,
    rng: &mut Rng,
) {
    for _ in 0..3 {
        for p in opt.params() {
            let g = Tensor::randn(&p.shape(), rng);
            p.zero_grad();
            p.accumulate_grad(&g);
        }
        opt.step();
    }
    // Round-trip through actual bytes, not just the State tree.
    let mut state = State::new();
    opt.snapshot(&mut state, "opt");
    let mut file = SnapshotFile::new();
    file.push("trainer", state);
    let bytes = file.to_bytes();
    let decoded = SnapshotFile::from_bytes(&bytes).unwrap();
    fresh
        .restore(decoded.section("trainer").unwrap(), "opt")
        .unwrap();

    // A second snapshot must reproduce the exact same bytes.
    let mut state2 = State::new();
    fresh.snapshot(&mut state2, "opt");
    let mut file2 = SnapshotFile::new();
    file2.push("trainer", state2);
    assert_eq!(file2.to_bytes(), bytes, "snapshot after restore drifted");

    // And further optimization must stay bit-identical. Both sides see the
    // same gradient stream.
    let mut grad_rng = rng.fork();
    for _ in 0..3 {
        let mut r2 = grad_rng.clone();
        for p in opt.params() {
            let g = Tensor::randn(&p.shape(), &mut grad_rng);
            p.zero_grad();
            p.accumulate_grad(&g);
        }
        for p in fresh.params() {
            let g = Tensor::randn(&p.shape(), &mut r2);
            p.zero_grad();
            p.accumulate_grad(&g);
        }
        opt.step();
        fresh.step();
    }
    for (a, b) in opt.params().iter().zip(fresh.params()) {
        let av = a.value();
        let bv = b.value();
        assert_eq!(av.shape(), bv.shape());
        for (x, y) in av.data().iter().zip(bv.data()) {
            assert_eq!(x.to_bits(), y.to_bits(), "post-resume divergence");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sgd_checkpoint_resume_is_bit_exact(
        seed in 0u64..u64::MAX,
        n_params in 1usize..4,
        dim in 1usize..7,
    ) {
        let mut rng = Rng::seed_from(seed);
        let shapes: Vec<Vec<usize>> = (0..n_params).map(|i| vec![dim, i + 1]).collect();
        let params = make_params(&shapes, &mut rng);
        let fresh = blank_params(&shapes);
        assert_resume_parity(
            Sgd::with_momentum(params, 0.05, 0.9, 1e-4),
            Sgd::with_momentum(fresh, 0.05, 0.9, 1e-4),
            &mut rng,
        );
    }

    #[test]
    fn adam_checkpoint_resume_is_bit_exact(
        seed in 0u64..u64::MAX,
        n_params in 1usize..4,
        dim in 1usize..7,
    ) {
        let mut rng = Rng::seed_from(seed);
        let shapes: Vec<Vec<usize>> = (0..n_params).map(|i| vec![i + 1, dim]).collect();
        let params = make_params(&shapes, &mut rng);
        let fresh = blank_params(&shapes);
        assert_resume_parity(
            Adam::new(params, 1e-3),
            Adam::new(fresh, 1e-3),
            &mut rng,
        );
    }

    #[test]
    fn rmsprop_checkpoint_resume_is_bit_exact(
        seed in 0u64..u64::MAX,
        dim in 1usize..9,
    ) {
        let mut rng = Rng::seed_from(seed);
        let shapes = vec![vec![dim], vec![dim, 2]];
        let params = make_params(&shapes, &mut rng);
        let fresh = blank_params(&shapes);
        assert_resume_parity(
            RmsProp::new(params, 1e-3),
            RmsProp::new(fresh, 1e-3),
            &mut rng,
        );
    }
}

#[test]
fn restore_rejects_wrong_parameter_count() {
    let mut rng = Rng::seed_from(1);
    let params = make_params(&[vec![3]], &mut rng);
    let opt = Sgd::new(params, 0.1);
    let mut state = State::new();
    opt.snapshot(&mut state, "opt");
    let two = make_params(&[vec![3], vec![3]], &mut rng);
    let mut other = Sgd::new(two, 0.1);
    assert!(other.restore(&state, "opt").is_err());
}

#[test]
fn batchnorm_running_stats_round_trip() {
    use aibench_autograd::Graph;
    use aibench_nn::{BatchNorm2d, Mode, Module as _};
    let mut rng = Rng::seed_from(4);
    let bn = BatchNorm2d::new(3);
    // Drive a few training steps so the running stats move off init.
    for _ in 0..4 {
        let mut g = Graph::new();
        let x = g.input(Tensor::randn(&[2, 3, 4, 4], &mut rng));
        let _ = bn.forward(&mut g, x, Mode::Train);
    }
    let mut state = State::new();
    bn.snapshot(&mut state, "bn");
    let mut fresh = BatchNorm2d::new(3);
    fresh.restore(&state, "bn").unwrap();
    assert_eq!(
        bn.running_mean().data(),
        fresh.running_mean().data(),
        "running mean did not round-trip"
    );
    assert_eq!(bn.running_var().data(), fresh.running_var().data());
    // Trainable params deliberately do NOT travel with the layer snapshot.
    assert_eq!(fresh.params().len(), 2);
}

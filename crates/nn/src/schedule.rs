//! Learning-rate schedules.

/// A learning-rate schedule mapping an epoch index to a multiplier of the
/// base rate.
#[derive(Debug, Clone, PartialEq)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant,
    /// Multiply by `gamma` every `every` epochs.
    StepDecay {
        /// Epoch interval between decays.
        every: usize,
        /// Multiplicative factor applied at each decay.
        gamma: f32,
    },
    /// Cosine annealing from 1 down to `floor` over `total` epochs.
    Cosine {
        /// Epoch count of the annealing period.
        total: usize,
        /// Final multiplier at the end of the period.
        floor: f32,
    },
    /// Linear warmup over `warmup` epochs, then constant.
    Warmup {
        /// Number of warmup epochs.
        warmup: usize,
    },
}

impl LrSchedule {
    /// The learning-rate multiplier for `epoch` (0-based).
    pub fn factor(&self, epoch: usize) -> f32 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::StepDecay { every, gamma } => gamma.powi((epoch / every.max(1)) as i32),
            LrSchedule::Cosine { total, floor } => {
                let t = (epoch as f32 / total.max(1) as f32).min(1.0);
                floor + (1.0 - floor) * 0.5 * (1.0 + (std::f32::consts::PI * t).cos())
            }
            LrSchedule::Warmup { warmup } => {
                if epoch >= warmup {
                    1.0
                } else {
                    (epoch + 1) as f32 / warmup as f32
                }
            }
        }
    }

    /// The absolute learning rate given a base rate.
    pub fn lr_at(&self, base: f32, epoch: usize) -> f32 {
        base * self.factor(epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_one() {
        assert_eq!(LrSchedule::Constant.factor(0), 1.0);
        assert_eq!(LrSchedule::Constant.factor(100), 1.0);
    }

    #[test]
    fn step_decay_halves() {
        let s = LrSchedule::StepDecay {
            every: 10,
            gamma: 0.5,
        };
        assert_eq!(s.factor(0), 1.0);
        assert_eq!(s.factor(9), 1.0);
        assert_eq!(s.factor(10), 0.5);
        assert_eq!(s.factor(25), 0.25);
    }

    #[test]
    fn cosine_endpoints() {
        let s = LrSchedule::Cosine {
            total: 100,
            floor: 0.1,
        };
        assert!((s.factor(0) - 1.0).abs() < 1e-6);
        assert!((s.factor(100) - 0.1).abs() < 1e-6);
        assert!(s.factor(50) > 0.1 && s.factor(50) < 1.0);
    }

    #[test]
    fn warmup_ramps_linearly() {
        let s = LrSchedule::Warmup { warmup: 4 };
        assert_eq!(s.factor(0), 0.25);
        assert_eq!(s.factor(3), 1.0);
        assert_eq!(s.factor(10), 1.0);
    }
}

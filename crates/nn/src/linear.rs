//! Fully-connected layer.

use aibench_autograd::{Graph, Param, Var};
use aibench_tensor::Rng;

use crate::init::kaiming_normal;
use crate::module::Module;

/// A fully-connected (affine) layer: `y = x W + b`.
///
/// Weight shape is `[d_in, d_out]`; inputs are `[n, d_in]`.
#[derive(Debug)]
pub struct Linear {
    weight: Param,
    bias: Param,
}

impl Linear {
    /// Creates a layer with Kaiming-normal weights and zero bias.
    pub fn new(d_in: usize, d_out: usize, rng: &mut Rng) -> Self {
        Linear {
            weight: Param::new("linear.weight", kaiming_normal(&[d_in, d_out], d_in, rng)),
            bias: Param::new("linear.bias", aibench_tensor::Tensor::zeros(&[d_out])),
        }
    }

    /// Input feature dimension.
    pub fn d_in(&self) -> usize {
        self.weight.shape()[0]
    }

    /// Output feature dimension.
    pub fn d_out(&self) -> usize {
        self.weight.shape()[1]
    }

    /// Applies the layer to `[n, d_in]`, returning `[n, d_out]`.
    ///
    /// # Panics
    ///
    /// Panics if the trailing dimension of `x` is not `d_in`.
    pub fn forward(&self, g: &mut Graph, x: Var) -> Var {
        let w = g.param(&self.weight);
        let b = g.param(&self.bias);
        g.linear(x, w, b)
    }
}

impl Module for Linear {
    fn params(&self) -> Vec<Param> {
        vec![self.weight.clone(), self.bias.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Optimizer, Sgd};
    use aibench_tensor::Tensor;

    #[test]
    fn shapes_and_param_count() {
        let mut rng = Rng::seed_from(1);
        let l = Linear::new(3, 5, &mut rng);
        assert_eq!(l.param_count(), 3 * 5 + 5);
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(&[4, 3]));
        let y = l.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[4, 5]);
    }

    #[test]
    fn learns_identity_map() {
        // Regression: fit y = x on scalar data; loss must fall sharply.
        let mut rng = Rng::seed_from(2);
        let l = Linear::new(1, 1, &mut rng);
        let mut opt = Sgd::new(l.params(), 0.1);
        let xs = Tensor::from_vec((0..16).map(|i| i as f32 / 8.0 - 1.0).collect(), &[16, 1]);
        let mut last = f32::INFINITY;
        for _ in 0..200 {
            let mut g = Graph::new();
            let x = g.input(xs.clone());
            let y = l.forward(&mut g, x);
            let loss = g.mse_loss(y, &xs);
            last = g.value(loss).item();
            g.backward(loss);
            opt.step();
            opt.zero_grad();
        }
        assert!(last < 1e-4, "final loss {last}");
    }
}

//! Neural-network building blocks for the AIBench training benchmarks:
//! layers, initializers, optimizers, and learning-rate schedules.
//!
//! Layers own [`aibench_autograd::Param`] handles and build their forward
//! pass onto an [`aibench_autograd::Graph`] each step. Optimizers consume
//! the parameter list exposed through the [`Module`] trait.
//!
//! # Example
//!
//! ```
//! use aibench_autograd::Graph;
//! use aibench_nn::{Linear, Module, Optimizer, Sgd};
//! use aibench_tensor::{Rng, Tensor};
//!
//! let mut rng = Rng::seed_from(0);
//! let layer = Linear::new(4, 2, &mut rng);
//! let mut opt = Sgd::new(layer.params(), 0.1);
//! let mut g = Graph::new();
//! let x = g.input(Tensor::randn(&[8, 4], &mut rng));
//! let y = layer.forward(&mut g, x);
//! let loss = g.mse_loss(y, &Tensor::zeros(&[8, 2]));
//! g.backward(loss);
//! opt.step();
//! opt.zero_grad();
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod attention;
mod conv;
mod embedding;
mod init;
mod linear;
mod module;
mod optim;
mod rnn;
mod schedule;

pub use attention::{LayerNorm, MultiHeadAttention, TransformerBlock};
pub use conv::{BatchNorm2d, Conv2d};
pub use embedding::Embedding;
pub use init::{kaiming_normal, kaiming_uniform, xavier_uniform};
pub use linear::Linear;
pub use module::{Mode, Module};
pub use optim::{clip_grad_norm, Adam, Optimizer, RmsProp, Sgd};
pub use rnn::{GruCell, LstmCell, RnnCell};
pub use schedule::LrSchedule;

//! Optimizers: SGD (with momentum), Adam, and RMSProp.
//!
//! Update rules are elementwise, so each optimizer runs its state and
//! parameter sweeps multi-threaded over contiguous chunks (via
//! `aibench-parallel`) with results independent of the thread count.

use aibench_autograd::Param;
use aibench_tensor::Tensor;

/// A first-order optimizer over a fixed parameter list.
pub trait Optimizer {
    /// Applies one update using the currently accumulated gradients.
    fn step(&mut self);

    /// Zeroes all parameter gradients.
    fn zero_grad(&self);

    /// Sets the learning rate (used by schedules).
    fn set_lr(&mut self, lr: f32);

    /// The current learning rate.
    fn lr(&self) -> f32;

    /// Multiplies the learning rate by `factor` — the hook fault-recovery
    /// policies use to cool a diverging run down after rolling back to a
    /// valid snapshot (factor < 1) without knowing the optimizer's base
    /// rate.
    fn scale_lr(&mut self, factor: f32) {
        let lr = self.lr();
        self.set_lr(lr * factor);
    }

    /// The parameters this optimizer updates (used by the tape sanitizer
    /// to probe for dead or non-finite parameters).
    fn params(&self) -> &[Param];
}

/// Rescales gradients in place so their global L2 norm is at most
/// `max_norm`. Returns the pre-clipping norm.
pub fn clip_grad_norm(params: &[Param], max_norm: f32) -> f32 {
    let total: f32 = params
        .iter()
        .map(|p| p.grad().sq_norm())
        .sum::<f32>()
        .sqrt();
    if total > max_norm && total > 0.0 {
        let scale = max_norm / total;
        for p in params {
            let mut g = p.grad_mut();
            g.map_inplace(|x| x * scale);
        }
    }
    total
}

/// Stochastic gradient descent with optional momentum and weight decay.
#[derive(Debug)]
pub struct Sgd {
    params: Vec<Param>,
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(params: Vec<Param>, lr: f32) -> Self {
        Sgd::with_momentum(params, lr, 0.0, 0.0)
    }

    /// SGD with momentum and L2 weight decay.
    pub fn with_momentum(params: Vec<Param>, lr: f32, momentum: f32, weight_decay: f32) -> Self {
        let velocity = params.iter().map(|p| Tensor::zeros(&p.shape())).collect();
        Sgd {
            params,
            lr,
            momentum,
            weight_decay,
            velocity,
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self) {
        let _scope = aibench_parallel::effects::kernel_scope("sgd_step");
        for (p, v) in self.params.iter().zip(&mut self.velocity) {
            let mut update = p.grad().clone();
            if self.weight_decay > 0.0 {
                update.add_scaled_inplace(&p.value(), self.weight_decay);
            }
            if self.momentum > 0.0 {
                v.map_inplace(|x| x * self.momentum);
                v.add_scaled_inplace(&update, 1.0);
                p.value_mut().add_scaled_inplace(v, -self.lr);
            } else {
                p.value_mut().add_scaled_inplace(&update, -self.lr);
            }
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn params(&self) -> &[Param] {
        &self.params
    }
}

/// The Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug)]
pub struct Adam {
    params: Vec<Param>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u32,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with the standard `(0.9, 0.999)` betas.
    pub fn new(params: Vec<Param>, lr: f32) -> Self {
        Adam::with_betas(params, lr, 0.9, 0.999)
    }

    /// Adam with explicit betas (WGAN training uses `(0.5, 0.9)`).
    pub fn with_betas(params: Vec<Param>, lr: f32, beta1: f32, beta2: f32) -> Self {
        let m = params.iter().map(|p| Tensor::zeros(&p.shape())).collect();
        let v = params.iter().map(|p| Tensor::zeros(&p.shape())).collect();
        Adam {
            params,
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            t: 0,
            m,
            v,
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let chunk = aibench_parallel::ELEMWISE_CHUNK;
        let _scope = aibench_parallel::effects::kernel_scope("adam_step");
        for ((p, m), v) in self.params.iter().zip(&mut self.m).zip(&mut self.v) {
            let g = p.grad().clone();
            let b1 = self.beta1;
            let b2 = self.beta2;
            // Each moment update is independent per element, so the chunked
            // parallel loops below are thread-count invariant.
            aibench_parallel::parallel_slice_mut(m.data_mut(), chunk, |range, mc| {
                aibench_parallel::effects::read(g.data(), range.clone());
                for (mi, &gi) in mc.iter_mut().zip(&g.data()[range]) {
                    *mi = b1 * *mi + (1.0 - b1) * gi;
                }
            });
            aibench_parallel::parallel_slice_mut(v.data_mut(), chunk, |range, vc| {
                aibench_parallel::effects::read(g.data(), range.clone());
                for (vi, &gi) in vc.iter_mut().zip(&g.data()[range]) {
                    *vi = b2 * *vi + (1.0 - b2) * gi * gi;
                }
            });
            let (lr, eps) = (self.lr, self.eps);
            let mut val = p.value_mut();
            aibench_parallel::parallel_slice_mut(val.data_mut(), chunk, |range, xc| {
                aibench_parallel::effects::read(m.data(), range.clone());
                aibench_parallel::effects::read(v.data(), range.clone());
                for ((xi, &mi), &vi) in xc
                    .iter_mut()
                    .zip(&m.data()[range.clone()])
                    .zip(&v.data()[range])
                {
                    let mhat = mi / bc1;
                    let vhat = vi / bc2;
                    *xi -= lr * mhat / (vhat.sqrt() + eps);
                }
            });
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn params(&self) -> &[Param] {
        &self.params
    }
}

/// RMSProp (Tieleman & Hinton), the optimizer WGAN training prescribes.
#[derive(Debug)]
pub struct RmsProp {
    params: Vec<Param>,
    lr: f32,
    alpha: f32,
    eps: f32,
    sq: Vec<Tensor>,
}

impl RmsProp {
    /// RMSProp with smoothing constant `alpha = 0.99`.
    pub fn new(params: Vec<Param>, lr: f32) -> Self {
        let sq = params.iter().map(|p| Tensor::zeros(&p.shape())).collect();
        RmsProp {
            params,
            lr,
            alpha: 0.99,
            eps: 1e-8,
            sq,
        }
    }
}

impl Optimizer for RmsProp {
    fn step(&mut self) {
        let chunk = aibench_parallel::ELEMWISE_CHUNK;
        let _scope = aibench_parallel::effects::kernel_scope("rmsprop_step");
        for (p, s) in self.params.iter().zip(&mut self.sq) {
            let g = p.grad().clone();
            let a = self.alpha;
            aibench_parallel::parallel_slice_mut(s.data_mut(), chunk, |range, sc| {
                aibench_parallel::effects::read(g.data(), range.clone());
                for (si, &gi) in sc.iter_mut().zip(&g.data()[range]) {
                    *si = a * *si + (1.0 - a) * gi * gi;
                }
            });
            let (lr, eps) = (self.lr, self.eps);
            let mut val = p.value_mut();
            aibench_parallel::parallel_slice_mut(val.data_mut(), chunk, |range, xc| {
                aibench_parallel::effects::read(s.data(), range.clone());
                aibench_parallel::effects::read(g.data(), range.clone());
                for ((xi, &si), &gi) in xc
                    .iter_mut()
                    .zip(&s.data()[range.clone()])
                    .zip(&g.data()[range])
                {
                    *xi -= lr * gi / (si.sqrt() + eps);
                }
            });
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn params(&self) -> &[Param] {
        &self.params
    }
}

// --- Checkpointing ------------------------------------------------------
//
// Each optimizer saves its parameters (value + grad, via `Param`'s own
// impl) under `{prefix}.p{i}`, its moment buffers alongside them, and the
// mutable scalars (`lr`, step counter). Hyperparameters fixed at
// construction (betas, momentum, eps) are architecture, not state — the
// resume path rebuilds the trainer from the benchmark spec and only
// restores what training mutates.

use aibench_ckpt::{key, CkptError, Restore, Snapshot, State};

fn snapshot_params(params: &[Param], state: &mut State, prefix: &str) {
    state.put_usize(key(prefix, "n"), params.len());
    for (i, p) in params.iter().enumerate() {
        p.snapshot(state, &key(prefix, &format!("p{i}")));
    }
}

fn restore_params(params: &mut [Param], state: &State, prefix: &str) -> Result<(), CkptError> {
    let n = state.usize(&key(prefix, "n"))?;
    if n != params.len() {
        return Err(CkptError::MetaMismatch {
            what: format!(
                "optimizer `{prefix}` holds {} parameter(s), snapshot has {n}",
                params.len()
            ),
        });
    }
    for (i, p) in params.iter_mut().enumerate() {
        p.restore(state, &key(prefix, &format!("p{i}")))?;
    }
    Ok(())
}

impl Snapshot for Sgd {
    fn snapshot(&self, state: &mut State, prefix: &str) {
        snapshot_params(&self.params, state, prefix);
        state.put_f32(key(prefix, "lr"), self.lr);
        for (i, v) in self.velocity.iter().enumerate() {
            v.snapshot(state, &key(prefix, &format!("vel{i}")));
        }
    }
}

impl Restore for Sgd {
    fn restore(&mut self, state: &State, prefix: &str) -> Result<(), CkptError> {
        restore_params(&mut self.params, state, prefix)?;
        self.lr = state.f32(&key(prefix, "lr"))?;
        for (i, v) in self.velocity.iter_mut().enumerate() {
            v.restore(state, &key(prefix, &format!("vel{i}")))?;
        }
        Ok(())
    }
}

impl Snapshot for Adam {
    fn snapshot(&self, state: &mut State, prefix: &str) {
        snapshot_params(&self.params, state, prefix);
        state.put_f32(key(prefix, "lr"), self.lr);
        state.put_u64(key(prefix, "t"), u64::from(self.t));
        for (i, m) in self.m.iter().enumerate() {
            m.snapshot(state, &key(prefix, &format!("m{i}")));
        }
        for (i, v) in self.v.iter().enumerate() {
            v.snapshot(state, &key(prefix, &format!("v{i}")));
        }
    }
}

impl Restore for Adam {
    fn restore(&mut self, state: &State, prefix: &str) -> Result<(), CkptError> {
        restore_params(&mut self.params, state, prefix)?;
        self.lr = state.f32(&key(prefix, "lr"))?;
        self.t = state.u64(&key(prefix, "t"))? as u32;
        for (i, m) in self.m.iter_mut().enumerate() {
            m.restore(state, &key(prefix, &format!("m{i}")))?;
        }
        for (i, v) in self.v.iter_mut().enumerate() {
            v.restore(state, &key(prefix, &format!("v{i}")))?;
        }
        Ok(())
    }
}

impl Snapshot for RmsProp {
    fn snapshot(&self, state: &mut State, prefix: &str) {
        snapshot_params(&self.params, state, prefix);
        state.put_f32(key(prefix, "lr"), self.lr);
        for (i, s) in self.sq.iter().enumerate() {
            s.snapshot(state, &key(prefix, &format!("sq{i}")));
        }
    }
}

impl Restore for RmsProp {
    fn restore(&mut self, state: &State, prefix: &str) -> Result<(), CkptError> {
        restore_params(&mut self.params, state, prefix)?;
        self.lr = state.f32(&key(prefix, "lr"))?;
        for (i, s) in self.sq.iter_mut().enumerate() {
            s.restore(state, &key(prefix, &format!("sq{i}")))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aibench_autograd::Graph;
    use aibench_tensor::Rng;

    /// Minimizes f(w) = ||w - target||^2 with the given optimizer factory.
    fn converges<O: Optimizer>(make: impl Fn(Vec<Param>) -> O, iters: usize) -> f32 {
        let mut rng = Rng::seed_from(20);
        let w = Param::new("w", Tensor::randn(&[4], &mut rng));
        let target = Tensor::from_vec(vec![1.0, -2.0, 0.5, 3.0], &[4]);
        let mut opt = make(vec![w.clone()]);
        let mut last = f32::INFINITY;
        for _ in 0..iters {
            let mut g = Graph::new();
            let wv = g.param(&w);
            let loss = g.mse_loss(wv, &target);
            last = g.value(loss).item();
            g.backward(loss);
            opt.step();
            opt.zero_grad();
        }
        last
    }

    #[test]
    fn sgd_converges() {
        assert!(converges(|p| Sgd::new(p, 0.1), 200) < 1e-6);
    }

    #[test]
    fn sgd_momentum_converges() {
        assert!(converges(|p| Sgd::with_momentum(p, 0.05, 0.9, 0.0), 200) < 1e-6);
    }

    #[test]
    fn adam_converges() {
        assert!(converges(|p| Adam::new(p, 0.1), 300) < 1e-4);
    }

    #[test]
    fn rmsprop_converges() {
        assert!(converges(|p| RmsProp::new(p, 0.05), 300) < 1e-4);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let w = Param::new("w", Tensor::ones(&[4]));
        let mut opt = Sgd::with_momentum(vec![w.clone()], 0.1, 0.0, 0.5);
        // No loss gradient at all: pure decay.
        for _ in 0..10 {
            opt.step();
            opt.zero_grad();
        }
        assert!(w.value().data()[0] < 0.7);
    }

    #[test]
    fn clip_grad_norm_caps_norm() {
        let w = Param::new("w", Tensor::zeros(&[3]));
        w.accumulate_grad(&Tensor::from_vec(vec![3.0, 4.0, 0.0], &[3]));
        let pre = clip_grad_norm(std::slice::from_ref(&w), 1.0);
        assert!((pre - 5.0).abs() < 1e-5);
        assert!((w.grad().sq_norm().sqrt() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_grad_norm_no_op_below_cap() {
        let w = Param::new("w", Tensor::zeros(&[2]));
        w.accumulate_grad(&Tensor::from_vec(vec![0.3, 0.4], &[2]));
        clip_grad_norm(std::slice::from_ref(&w), 1.0);
        assert_eq!(w.grad().data(), &[0.3, 0.4]);
    }

    #[test]
    fn scale_lr_compounds_multiplicatively() {
        let w = Param::new("w", Tensor::zeros(&[2]));
        let mut opt = Adam::new(vec![w], 0.01);
        opt.scale_lr(0.5);
        opt.scale_lr(0.5);
        assert_eq!(opt.lr(), 0.01 * 0.25);
    }
}

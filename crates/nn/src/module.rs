//! The parameter-collection trait and the train/eval mode flag.

use aibench_autograd::Param;

/// Whether a forward pass is part of training or evaluation.
///
/// Controls batch-norm statistics (batch vs running) and dropout
/// (active vs identity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Training: batch statistics, dropout active.
    #[default]
    Train,
    /// Evaluation: running statistics, dropout disabled.
    Eval,
}

impl Mode {
    /// True in training mode.
    pub fn is_train(self) -> bool {
        matches!(self, Mode::Train)
    }
}

/// Anything that owns trainable parameters.
///
/// Layers and whole models implement this so optimizers can collect every
/// [`Param`] handle. Forward passes are inherent methods on each layer (they
/// have heterogeneous signatures), so the trait stays object-safe and
/// minimal.
pub trait Module {
    /// Handles to every trainable parameter, in a stable order.
    fn params(&self) -> Vec<Param>;

    /// Total number of learnable scalars.
    fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Zeroes every parameter gradient.
    fn zero_grad(&self) {
        for p in self.params() {
            p.zero_grad();
        }
    }
}

impl Module for Vec<Param> {
    fn params(&self) -> Vec<Param> {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aibench_tensor::Tensor;

    #[test]
    fn param_count_sums_elements() {
        let ps = vec![
            Param::new("a", Tensor::zeros(&[2, 3])),
            Param::new("b", Tensor::zeros(&[5])),
        ];
        assert_eq!(ps.param_count(), 11);
    }

    #[test]
    fn mode_default_is_train() {
        assert!(Mode::default().is_train());
        assert!(!Mode::Eval.is_train());
    }
}

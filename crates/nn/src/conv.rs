//! Convolution and batch-normalization layers.

use std::cell::RefCell;

use aibench_autograd::{Graph, Param, Var};
use aibench_tensor::ops::Conv2dArgs;
use aibench_tensor::{Rng, Tensor};

use crate::init::kaiming_normal;
use crate::module::{Mode, Module};

/// 2-D convolution layer with optional bias.
#[derive(Debug)]
pub struct Conv2d {
    weight: Param,
    bias: Option<Param>,
    args: Conv2dArgs,
}

impl Conv2d {
    /// Creates a `k`×`k` convolution mapping `c_in` to `c_out` channels.
    pub fn new(
        c_in: usize,
        c_out: usize,
        k: usize,
        stride: usize,
        pad: usize,
        rng: &mut Rng,
    ) -> Self {
        let fan_in = c_in * k * k;
        Conv2d {
            weight: Param::new(
                "conv.weight",
                kaiming_normal(&[c_out, c_in, k, k], fan_in, rng),
            ),
            bias: Some(Param::new("conv.bias", Tensor::zeros(&[c_out]))),
            args: Conv2dArgs::new(stride, pad),
        }
    }

    /// Creates a convolution without a bias term (the usual choice when a
    /// batch norm immediately follows).
    pub fn new_no_bias(
        c_in: usize,
        c_out: usize,
        k: usize,
        stride: usize,
        pad: usize,
        rng: &mut Rng,
    ) -> Self {
        let mut conv = Conv2d::new(c_in, c_out, k, stride, pad, rng);
        conv.bias = None;
        conv
    }

    /// The convolution geometry.
    pub fn args(&self) -> Conv2dArgs {
        self.args
    }

    /// Output channel count.
    pub fn c_out(&self) -> usize {
        self.weight.shape()[0]
    }

    /// Applies the convolution to an NCHW input.
    ///
    /// # Panics
    ///
    /// Panics on rank/channel mismatches.
    pub fn forward(&self, g: &mut Graph, x: Var) -> Var {
        let w = g.param(&self.weight);
        let y = g.conv2d(x, w, self.args);
        match &self.bias {
            Some(b) => {
                let c = self.c_out();
                let bv = g.param(b);
                let b4 = g.reshape(bv, &[1, c, 1, 1]);
                g.add(y, b4)
            }
            None => y,
        }
    }
}

impl Module for Conv2d {
    fn params(&self) -> Vec<Param> {
        let mut ps = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            ps.push(b.clone());
        }
        ps
    }
}

/// 2-D batch normalization with running statistics.
///
/// In [`Mode::Train`] the layer normalizes with batch statistics and updates
/// exponential running averages; in [`Mode::Eval`] it applies the stored
/// running statistics.
#[derive(Debug)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: RefCell<Tensor>,
    running_var: RefCell<Tensor>,
    momentum: f32,
    eps: f32,
}

impl BatchNorm2d {
    /// Creates a batch norm over `c` channels with momentum 0.1.
    pub fn new(c: usize) -> Self {
        BatchNorm2d {
            gamma: Param::new("bn.gamma", Tensor::ones(&[c])),
            beta: Param::new("bn.beta", Tensor::zeros(&[c])),
            running_mean: RefCell::new(Tensor::zeros(&[c])),
            running_var: RefCell::new(Tensor::ones(&[c])),
            momentum: 0.1,
            eps: 1e-5,
        }
    }

    /// Current running mean (for tests and checkpoint inspection).
    pub fn running_mean(&self) -> Tensor {
        self.running_mean.borrow().clone()
    }

    /// Current running variance.
    pub fn running_var(&self) -> Tensor {
        self.running_var.borrow().clone()
    }

    /// Applies batch normalization to an NCHW input.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not 4-D or its channel count differs from the
    /// layer's.
    pub fn forward(&self, g: &mut Graph, x: Var, mode: Mode) -> Var {
        let gamma = g.param(&self.gamma);
        let beta = g.param(&self.beta);
        match mode {
            Mode::Train => {
                let (y, mean, var) = g.batch_norm2d(x, gamma, beta, self.eps);
                let mut rm = self.running_mean.borrow_mut();
                let mut rv = self.running_var.borrow_mut();
                *rm = rm
                    .scale(1.0 - self.momentum)
                    .add(&mean.scale(self.momentum));
                *rv = rv.scale(1.0 - self.momentum).add(&var.scale(self.momentum));
                y
            }
            Mode::Eval => {
                let rm = self.running_mean.borrow().clone();
                let rv = self.running_var.borrow().clone();
                g.batch_norm2d_inference(x, gamma, beta, &rm, &rv, self.eps)
            }
        }
    }
}

impl Module for BatchNorm2d {
    fn params(&self) -> Vec<Param> {
        vec![self.gamma.clone(), self.beta.clone()]
    }
}

impl aibench_ckpt::Snapshot for BatchNorm2d {
    /// Saves only the running statistics; `gamma`/`beta` are trainable
    /// parameters and travel with the optimizer's snapshot.
    fn snapshot(&self, state: &mut aibench_ckpt::State, prefix: &str) {
        use aibench_ckpt::key;
        self.running_mean
            .borrow()
            .snapshot(state, &key(prefix, "running_mean"));
        self.running_var
            .borrow()
            .snapshot(state, &key(prefix, "running_var"));
    }
}

impl aibench_ckpt::Restore for BatchNorm2d {
    fn restore(
        &mut self,
        state: &aibench_ckpt::State,
        prefix: &str,
    ) -> Result<(), aibench_ckpt::CkptError> {
        use aibench_ckpt::key;
        self.running_mean
            .borrow_mut()
            .restore(state, &key(prefix, "running_mean"))?;
        self.running_var
            .borrow_mut()
            .restore(state, &key(prefix, "running_var"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_output_shape() {
        let mut rng = Rng::seed_from(4);
        let conv = Conv2d::new(3, 8, 3, 2, 1, &mut rng);
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(&[2, 3, 8, 8]));
        let y = conv.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[2, 8, 4, 4]);
        assert_eq!(conv.param_count(), 8 * 3 * 9 + 8);
    }

    #[test]
    fn no_bias_variant_has_fewer_params() {
        let mut rng = Rng::seed_from(5);
        let conv = Conv2d::new_no_bias(3, 8, 3, 1, 1, &mut rng);
        assert_eq!(conv.param_count(), 8 * 3 * 9);
    }

    #[test]
    fn bn_running_stats_track_batches() {
        let mut rng = Rng::seed_from(6);
        let bn = BatchNorm2d::new(2);
        // Feed batches with mean ~5 repeatedly; running mean must drift up.
        for _ in 0..40 {
            let x = Tensor::randn(&[4, 2, 3, 3], &mut rng).add_scalar(5.0);
            let mut g = Graph::new();
            let xv = g.input(x);
            let _ = bn.forward(&mut g, xv, Mode::Train);
        }
        let rm = bn.running_mean();
        assert!(
            rm.data().iter().all(|&m| (m - 5.0).abs() < 0.5),
            "running mean {rm:?}"
        );
    }

    #[test]
    fn bn_eval_uses_running_stats() {
        let bn = BatchNorm2d::new(1);
        // With default running stats (mean 0, var 1), eval is identity.
        let x = Tensor::from_vec(vec![1.0, -2.0, 0.5, 3.0], &[1, 1, 2, 2]);
        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let y = bn.forward(&mut g, xv, Mode::Eval);
        assert!(g.value(y).max_abs_diff(&x) < 1e-2);
    }
}

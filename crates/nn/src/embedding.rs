//! Token/row embedding table.

use aibench_autograd::{Graph, Param, Var};
use aibench_tensor::{Rng, Tensor};

use crate::module::Module;

/// A learnable embedding table `[vocab, dim]` with gather forward and
/// scatter-add backward.
#[derive(Debug)]
pub struct Embedding {
    table: Param,
}

impl Embedding {
    /// Creates a table initialized from `N(0, 0.1)`.
    pub fn new(vocab: usize, dim: usize, rng: &mut Rng) -> Self {
        Embedding {
            table: Param::new(
                "embedding.table",
                Tensor::from_fn(&[vocab, dim], |_| rng.normal_with(0.0, 0.1)),
            ),
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.table.shape()[0]
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.table.shape()[1]
    }

    /// Looks up `ids`, producing `[ids.len(), dim]`.
    ///
    /// # Panics
    ///
    /// Panics if any id exceeds the vocabulary.
    pub fn forward(&self, g: &mut Graph, ids: &[usize]) -> Var {
        let t = g.param(&self.table);
        g.index_select0(t, ids)
    }
}

impl Module for Embedding {
    fn params(&self) -> Vec<Param> {
        vec![self.table.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_shape() {
        let mut rng = Rng::seed_from(7);
        let e = Embedding::new(10, 4, &mut rng);
        let mut g = Graph::new();
        let v = e.forward(&mut g, &[1, 2, 1]);
        assert_eq!(g.value(v).shape(), &[3, 4]);
        assert_eq!(e.param_count(), 40);
    }

    #[test]
    fn repeated_ids_share_rows() {
        let mut rng = Rng::seed_from(8);
        let e = Embedding::new(10, 4, &mut rng);
        let mut g = Graph::new();
        let v = e.forward(&mut g, &[3, 3]);
        let d = g.value(v);
        assert_eq!(&d.data()[..4], &d.data()[4..]);
    }
}

//! Weight initializers.

use aibench_tensor::{Rng, Tensor};

/// Kaiming (He) normal initialization: `N(0, sqrt(2 / fan_in))`.
///
/// The default for layers followed by ReLU.
pub fn kaiming_normal(shape: &[usize], fan_in: usize, rng: &mut Rng) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    Tensor::from_fn(shape, |_| rng.normal_with(0.0, std))
}

/// Kaiming (He) uniform initialization: `U(-b, b)` with
/// `b = sqrt(6 / fan_in)`.
pub fn kaiming_uniform(shape: &[usize], fan_in: usize, rng: &mut Rng) -> Tensor {
    let b = (6.0 / fan_in.max(1) as f32).sqrt();
    Tensor::from_fn(shape, |_| rng.uniform_in(-b, b))
}

/// Xavier (Glorot) uniform initialization: `U(-b, b)` with
/// `b = sqrt(6 / (fan_in + fan_out))`. The default for tanh/sigmoid layers.
pub fn xavier_uniform(shape: &[usize], fan_in: usize, fan_out: usize, rng: &mut Rng) -> Tensor {
    let b = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    Tensor::from_fn(shape, |_| rng.uniform_in(-b, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kaiming_normal_variance() {
        let mut rng = Rng::seed_from(1);
        let t = kaiming_normal(&[100, 100], 100, &mut rng);
        let var = t.sq_norm() / t.len() as f32;
        assert!((var - 0.02).abs() < 0.005, "var {var}");
    }

    #[test]
    fn uniform_bounds_respected() {
        let mut rng = Rng::seed_from(2);
        let b = (6.0f32 / 64.0).sqrt();
        let t = kaiming_uniform(&[64, 64], 64, &mut rng);
        assert!(t.max_val() <= b && t.min_val() >= -b);
    }

    #[test]
    fn xavier_shrinks_with_fan_out() {
        let mut rng = Rng::seed_from(3);
        let small = xavier_uniform(&[10, 10], 10, 1000, &mut rng);
        let large = xavier_uniform(&[10, 10], 10, 10, &mut rng);
        assert!(small.sq_norm() < large.sq_norm());
    }
}

//! Multi-head attention and the transformer block (Vaswani et al.), the
//! backbone of the Text-to-Text translation benchmark.

use aibench_autograd::{Graph, Param, Var};
use aibench_tensor::{Rng, Tensor};

use crate::init::xavier_uniform;
use crate::linear::Linear;
use crate::module::Module;

/// Layer normalization with learnable gain and bias over the last axis.
#[derive(Debug)]
pub struct LayerNorm {
    gamma: Param,
    beta: Param,
}

impl LayerNorm {
    /// Creates a layer norm over a last axis of width `d`.
    pub fn new(d: usize) -> Self {
        LayerNorm {
            gamma: Param::new("ln.gamma", Tensor::ones(&[d])),
            beta: Param::new("ln.beta", Tensor::zeros(&[d])),
        }
    }

    /// Normalizes the last axis of `x`.
    pub fn forward(&self, g: &mut Graph, x: Var) -> Var {
        let gamma = g.param(&self.gamma);
        let beta = g.param(&self.beta);
        g.layer_norm(x, gamma, beta, 1e-5)
    }
}

impl Module for LayerNorm {
    fn params(&self) -> Vec<Param> {
        vec![self.gamma.clone(), self.beta.clone()]
    }
}

/// Scaled dot-product multi-head attention.
///
/// Inputs and outputs are `[batch, seq, d_model]`. Supports causal
/// (autoregressive) masking and cross-attention (separate key/value source).
#[derive(Debug)]
pub struct MultiHeadAttention {
    wq: Param,
    wk: Param,
    wv: Param,
    wo: Param,
    heads: usize,
    d_model: usize,
}

impl MultiHeadAttention {
    /// Creates an attention module with `heads` heads over `d_model`
    /// features.
    ///
    /// # Panics
    ///
    /// Panics if `d_model` is not divisible by `heads`.
    pub fn new(d_model: usize, heads: usize, rng: &mut Rng) -> Self {
        assert_eq!(
            d_model % heads,
            0,
            "d_model {d_model} not divisible by heads {heads}"
        );
        let mk = |name: &str, rng: &mut Rng| {
            Param::new(
                name,
                xavier_uniform(&[d_model, d_model], d_model, d_model, rng),
            )
        };
        MultiHeadAttention {
            wq: mk("mha.wq", rng),
            wk: mk("mha.wk", rng),
            wv: mk("mha.wv", rng),
            wo: mk("mha.wo", rng),
            heads,
            d_model,
        }
    }

    fn project(&self, g: &mut Graph, x: Var, w: &Param, b: usize, s: usize) -> Var {
        let dh = self.d_model / self.heads;
        let flat = g.reshape(x, &[b * s, self.d_model]);
        let wv = g.param(w);
        let proj = g.matmul(flat, wv);
        let shaped = g.reshape(proj, &[b, s, self.heads, dh]);
        let heads_first = g.permute(shaped, &[0, 2, 1, 3]);
        g.reshape(heads_first, &[b * self.heads, s, dh])
    }

    /// Attention of `query` over `kv` (use `query` for self-attention).
    /// Both are `[batch, seq, d_model]`; when `causal` is set, position `i`
    /// of the query may only attend to key positions `<= i` (requires equal
    /// sequence lengths).
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatches or `causal` with unequal lengths.
    pub fn forward(&self, g: &mut Graph, query: Var, kv: Var, causal: bool) -> Var {
        let qs = g.value(query).shape().to_vec();
        let ks = g.value(kv).shape().to_vec();
        assert_eq!(qs.len(), 3, "attention expects [b, s, d] query, got {qs:?}");
        assert_eq!(ks.len(), 3, "attention expects [b, s, d] kv, got {ks:?}");
        assert_eq!(
            qs[2], self.d_model,
            "query feature dim {} != d_model {}",
            qs[2], self.d_model
        );
        let (b, sq, sk) = (qs[0], qs[1], ks[1]);
        assert_eq!(ks[0], b, "attention batch mismatch");
        if causal {
            assert_eq!(sq, sk, "causal attention requires equal sequence lengths");
        }
        let dh = self.d_model / self.heads;

        let q = self.project(g, query, &self.wq, b, sq);
        let k = self.project(g, kv, &self.wk, b, sk);
        let v = self.project(g, kv, &self.wv, b, sk);

        let kt = g.permute(k, &[0, 2, 1]);
        let scores = g.batch_matmul(q, kt);
        let scaled = g.scale(scores, 1.0 / (dh as f32).sqrt());
        let masked = if causal {
            let mask = Tensor::from_fn(&[1, sq, sk], |i| {
                let r = (i / sk) % sq;
                let c = i % sk;
                if c > r {
                    -1e9
                } else {
                    0.0
                }
            });
            let m = g.input(mask);
            g.add(scaled, m)
        } else {
            scaled
        };
        let attn = g.softmax(masked);
        let ctx = g.batch_matmul(attn, v);
        let shaped = g.reshape(ctx, &[b, self.heads, sq, dh]);
        let seq_first = g.permute(shaped, &[0, 2, 1, 3]);
        let flat = g.reshape(seq_first, &[b * sq, self.d_model]);
        let wo = g.param(&self.wo);
        let out = g.matmul(flat, wo);
        g.reshape(out, &[b, sq, self.d_model])
    }
}

impl Module for MultiHeadAttention {
    fn params(&self) -> Vec<Param> {
        vec![
            self.wq.clone(),
            self.wk.clone(),
            self.wv.clone(),
            self.wo.clone(),
        ]
    }
}

/// A pre-norm transformer block: self-attention, optional cross-attention,
/// and a two-layer feed-forward network, each with a residual connection.
#[derive(Debug)]
pub struct TransformerBlock {
    self_attn: MultiHeadAttention,
    cross_attn: Option<MultiHeadAttention>,
    norm1: LayerNorm,
    norm2: LayerNorm,
    norm3: LayerNorm,
    ff1: Linear,
    ff2: Linear,
    causal: bool,
    d_model: usize,
}

impl TransformerBlock {
    /// Creates an encoder-style block (bidirectional self-attention).
    pub fn encoder(d_model: usize, heads: usize, d_ff: usize, rng: &mut Rng) -> Self {
        Self::build(d_model, heads, d_ff, false, false, rng)
    }

    /// Creates a decoder-style block (causal self-attention plus
    /// cross-attention over encoder memory).
    pub fn decoder(d_model: usize, heads: usize, d_ff: usize, rng: &mut Rng) -> Self {
        Self::build(d_model, heads, d_ff, true, true, rng)
    }

    fn build(
        d_model: usize,
        heads: usize,
        d_ff: usize,
        causal: bool,
        cross: bool,
        rng: &mut Rng,
    ) -> Self {
        TransformerBlock {
            self_attn: MultiHeadAttention::new(d_model, heads, rng),
            cross_attn: if cross {
                Some(MultiHeadAttention::new(d_model, heads, rng))
            } else {
                None
            },
            norm1: LayerNorm::new(d_model),
            norm2: LayerNorm::new(d_model),
            norm3: LayerNorm::new(d_model),
            ff1: Linear::new(d_model, d_ff, rng),
            ff2: Linear::new(d_ff, d_model, rng),
            causal,
            d_model,
        }
    }

    /// Applies the block to `[b, s, d_model]`. `memory` is the encoder
    /// output for decoder blocks (ignored by encoder blocks).
    ///
    /// # Panics
    ///
    /// Panics if a decoder block is called without `memory`.
    pub fn forward(&self, g: &mut Graph, x: Var, memory: Option<Var>) -> Var {
        let shape = g.value(x).shape().to_vec();
        let (b, s) = (shape[0], shape[1]);
        // Self-attention sub-layer.
        let n1 = self.norm1.forward(g, x);
        let sa = self.self_attn.forward(g, n1, n1, self.causal);
        let x = g.add(x, sa);
        // Cross-attention sub-layer.
        let x = if let Some(ca) = &self.cross_attn {
            let mem = memory.expect("decoder block requires encoder memory");
            let n2 = self.norm2.forward(g, x);
            let cv = ca.forward(g, n2, mem, false);
            g.add(x, cv)
        } else {
            x
        };
        // Feed-forward sub-layer.
        let n3 = self.norm3.forward(g, x);
        let flat = g.reshape(n3, &[b * s, self.d_model]);
        let h = self.ff1.forward(g, flat);
        let h = g.relu(h);
        let h = self.ff2.forward(g, h);
        let ff = g.reshape(h, &[b, s, self.d_model]);
        g.add(x, ff)
    }
}

impl Module for TransformerBlock {
    fn params(&self) -> Vec<Param> {
        let mut ps = self.self_attn.params();
        if let Some(ca) = &self.cross_attn {
            ps.extend(ca.params());
        }
        ps.extend(self.norm1.params());
        ps.extend(self.norm2.params());
        ps.extend(self.norm3.params());
        ps.extend(self.ff1.params());
        ps.extend(self.ff2.params());
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aibench_tensor::Rng;

    #[test]
    fn attention_shape_roundtrip() {
        let mut rng = Rng::seed_from(12);
        let mha = MultiHeadAttention::new(8, 2, &mut rng);
        let mut g = Graph::new();
        let x = g.input(Tensor::randn(&[2, 5, 8], &mut rng));
        let y = mha.forward(&mut g, x, x, false);
        assert_eq!(g.value(y).shape(), &[2, 5, 8]);
    }

    #[test]
    fn causal_mask_blocks_future() {
        // With a causal mask, changing a later token must not affect the
        // output at an earlier position.
        let mut rng = Rng::seed_from(13);
        let mha = MultiHeadAttention::new(4, 1, &mut rng);
        let base = Tensor::randn(&[1, 4, 4], &mut rng);
        let mut changed = base.clone();
        for i in 12..16 {
            changed.data_mut()[i] += 5.0; // perturb last token
        }
        let mut g1 = Graph::new();
        let x1 = g1.input(base);
        let y1 = mha.forward(&mut g1, x1, x1, true);
        let mut g2 = Graph::new();
        let x2 = g2.input(changed);
        let y2 = mha.forward(&mut g2, x2, x2, true);
        // Positions 0..3 (first three tokens) must agree exactly.
        let a = g1.value(y1).data();
        let b = g2.value(y2).data();
        for i in 0..12 {
            assert!((a[i] - b[i]).abs() < 1e-5, "future leaked at {i}");
        }
        assert!((a[12] - b[12]).abs() > 1e-5, "last position should differ");
    }

    #[test]
    fn cross_attention_uses_memory() {
        let mut rng = Rng::seed_from(14);
        let block = TransformerBlock::decoder(8, 2, 16, &mut rng);
        let mut g = Graph::new();
        let x = g.input(Tensor::randn(&[1, 3, 8], &mut rng));
        let mem = g.input(Tensor::randn(&[1, 6, 8], &mut rng));
        let y = block.forward(&mut g, x, Some(mem));
        assert_eq!(g.value(y).shape(), &[1, 3, 8]);
    }

    #[test]
    #[should_panic(expected = "requires encoder memory")]
    fn decoder_without_memory_panics() {
        let mut rng = Rng::seed_from(15);
        let block = TransformerBlock::decoder(8, 2, 16, &mut rng);
        let mut g = Graph::new();
        let x = g.input(Tensor::randn(&[1, 3, 8], &mut rng));
        let _ = block.forward(&mut g, x, None);
    }

    #[test]
    fn encoder_block_gradients_flow() {
        let mut rng = Rng::seed_from(16);
        let block = TransformerBlock::encoder(8, 2, 16, &mut rng);
        let mut g = Graph::new();
        let x = g.input(Tensor::randn(&[1, 4, 8], &mut rng));
        let y = block.forward(&mut g, x, None);
        let sq = g.square(y);
        let loss = g.sum(sq);
        g.backward(loss);
        let nonzero = block
            .params()
            .iter()
            .filter(|p| p.grad().sq_norm() > 0.0)
            .count();
        // All but norm2 (unused in encoder blocks) should receive gradient.
        assert!(
            nonzero >= block.params().len() - 2,
            "only {nonzero} params got gradient"
        );
    }
}

//! Recurrent cells: vanilla RNN, GRU, and LSTM.

use aibench_autograd::{Graph, Param, Var};
use aibench_tensor::{Rng, Tensor};

use crate::init::xavier_uniform;
use crate::module::Module;

fn gate_params(prefix: &str, d_in: usize, d_h: usize, rng: &mut Rng) -> (Param, Param, Param) {
    (
        Param::new(
            format!("{prefix}.w"),
            xavier_uniform(&[d_in, d_h], d_in, d_h, rng),
        ),
        Param::new(
            format!("{prefix}.u"),
            xavier_uniform(&[d_h, d_h], d_h, d_h, rng),
        ),
        Param::new(format!("{prefix}.b"), Tensor::zeros(&[d_h])),
    )
}

fn gate(g: &mut Graph, x: Var, h: Var, w: &Param, u: &Param, b: &Param) -> Var {
    let wv = g.param(w);
    let uv = g.param(u);
    let bv = g.param(b);
    let xw = g.matmul(x, wv);
    let hu = g.matmul(h, uv);
    let s = g.add(xw, hu);
    g.add(s, bv)
}

/// A vanilla tanh recurrent cell: `h' = tanh(x W + h U + b)`.
#[derive(Debug)]
pub struct RnnCell {
    w: Param,
    u: Param,
    b: Param,
    d_h: usize,
}

impl RnnCell {
    /// Creates a cell mapping `d_in` inputs to a `d_h` hidden state.
    pub fn new(d_in: usize, d_h: usize, rng: &mut Rng) -> Self {
        let (w, u, b) = gate_params("rnn", d_in, d_h, rng);
        RnnCell { w, u, b, d_h }
    }

    /// Hidden dimension.
    pub fn d_h(&self) -> usize {
        self.d_h
    }

    /// One recurrence step.
    pub fn step(&self, g: &mut Graph, x: Var, h: Var) -> Var {
        let s = gate(g, x, h, &self.w, &self.u, &self.b);
        g.tanh(s)
    }

    /// Zero initial state for a batch of `n`.
    pub fn zero_state(&self, g: &mut Graph, n: usize) -> Var {
        g.input(Tensor::zeros(&[n, self.d_h]))
    }
}

impl Module for RnnCell {
    fn params(&self) -> Vec<Param> {
        vec![self.w.clone(), self.u.clone(), self.b.clone()]
    }
}

/// A gated recurrent unit (Cho et al.).
#[derive(Debug)]
pub struct GruCell {
    z: (Param, Param, Param),
    r: (Param, Param, Param),
    h: (Param, Param, Param),
    d_h: usize,
}

impl GruCell {
    /// Creates a cell mapping `d_in` inputs to a `d_h` hidden state.
    pub fn new(d_in: usize, d_h: usize, rng: &mut Rng) -> Self {
        GruCell {
            z: gate_params("gru.z", d_in, d_h, rng),
            r: gate_params("gru.r", d_in, d_h, rng),
            h: gate_params("gru.h", d_in, d_h, rng),
            d_h,
        }
    }

    /// Hidden dimension.
    pub fn d_h(&self) -> usize {
        self.d_h
    }

    /// One recurrence step.
    pub fn step(&self, g: &mut Graph, x: Var, h: Var) -> Var {
        let zs = gate(g, x, h, &self.z.0, &self.z.1, &self.z.2);
        let z = g.sigmoid(zs);
        let rs = gate(g, x, h, &self.r.0, &self.r.1, &self.r.2);
        let r = g.sigmoid(rs);
        let rh = g.mul(r, h);
        let cs = gate(g, x, rh, &self.h.0, &self.h.1, &self.h.2);
        let cand = g.tanh(cs);
        // h' = (1 - z) * h + z * cand
        let neg_z = g.neg(z);
        let one_minus_z = g.add_scalar(neg_z, 1.0);
        let keep = g.mul(one_minus_z, h);
        let update = g.mul(z, cand);
        g.add(keep, update)
    }

    /// Zero initial state for a batch of `n`.
    pub fn zero_state(&self, g: &mut Graph, n: usize) -> Var {
        g.input(Tensor::zeros(&[n, self.d_h]))
    }
}

impl Module for GruCell {
    fn params(&self) -> Vec<Param> {
        vec![
            self.z.0.clone(),
            self.z.1.clone(),
            self.z.2.clone(),
            self.r.0.clone(),
            self.r.1.clone(),
            self.r.2.clone(),
            self.h.0.clone(),
            self.h.1.clone(),
            self.h.2.clone(),
        ]
    }
}

/// A long short-term memory cell (Hochreiter & Schmidhuber).
#[derive(Debug)]
pub struct LstmCell {
    i: (Param, Param, Param),
    f: (Param, Param, Param),
    o: (Param, Param, Param),
    c: (Param, Param, Param),
    d_h: usize,
}

impl LstmCell {
    /// Creates a cell mapping `d_in` inputs to a `d_h` hidden state.
    pub fn new(d_in: usize, d_h: usize, rng: &mut Rng) -> Self {
        LstmCell {
            i: gate_params("lstm.i", d_in, d_h, rng),
            f: gate_params("lstm.f", d_in, d_h, rng),
            o: gate_params("lstm.o", d_in, d_h, rng),
            c: gate_params("lstm.c", d_in, d_h, rng),
            d_h,
        }
    }

    /// Hidden dimension.
    pub fn d_h(&self) -> usize {
        self.d_h
    }

    /// One recurrence step over `(h, c)` state.
    pub fn step(&self, g: &mut Graph, x: Var, h: Var, c: Var) -> (Var, Var) {
        let is = gate(g, x, h, &self.i.0, &self.i.1, &self.i.2);
        let i = g.sigmoid(is);
        let fs = gate(g, x, h, &self.f.0, &self.f.1, &self.f.2);
        let f = g.sigmoid(fs);
        let os = gate(g, x, h, &self.o.0, &self.o.1, &self.o.2);
        let o = g.sigmoid(os);
        let cs = gate(g, x, h, &self.c.0, &self.c.1, &self.c.2);
        let cand = g.tanh(cs);
        let keep = g.mul(f, c);
        let write = g.mul(i, cand);
        let c_new = g.add(keep, write);
        let ct = g.tanh(c_new);
        let h_new = g.mul(o, ct);
        (h_new, c_new)
    }

    /// Zero initial `(h, c)` state for a batch of `n`.
    pub fn zero_state(&self, g: &mut Graph, n: usize) -> (Var, Var) {
        (
            g.input(Tensor::zeros(&[n, self.d_h])),
            g.input(Tensor::zeros(&[n, self.d_h])),
        )
    }
}

impl Module for LstmCell {
    fn params(&self) -> Vec<Param> {
        vec![
            self.i.0.clone(),
            self.i.1.clone(),
            self.i.2.clone(),
            self.f.0.clone(),
            self.f.1.clone(),
            self.f.2.clone(),
            self.o.0.clone(),
            self.o.1.clone(),
            self.o.2.clone(),
            self.c.0.clone(),
            self.c.1.clone(),
            self.c.2.clone(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};

    #[test]
    fn shapes() {
        let mut rng = Rng::seed_from(9);
        let gru = GruCell::new(3, 5, &mut rng);
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(&[2, 3]));
        let h = gru.zero_state(&mut g, 2);
        let h2 = gru.step(&mut g, x, h);
        assert_eq!(g.value(h2).shape(), &[2, 5]);
        assert_eq!(gru.params().len(), 9);

        let lstm = LstmCell::new(3, 4, &mut rng);
        let (h, c) = lstm.zero_state(&mut g, 2);
        let x = g.input(Tensor::zeros(&[2, 3]));
        let (h2, c2) = lstm.step(&mut g, x, h, c);
        assert_eq!(g.value(h2).shape(), &[2, 4]);
        assert_eq!(g.value(c2).shape(), &[2, 4]);
    }

    #[test]
    fn gru_learns_to_remember_first_token() {
        // Sequence task: output at the end should equal the first input.
        // Tests gradient flow through several recurrence steps.
        let mut rng = Rng::seed_from(10);
        let gru = GruCell::new(1, 8, &mut rng);
        let head = crate::Linear::new(8, 1, &mut rng);
        let mut params = gru.params();
        params.extend(head.params());
        let mut opt = Adam::new(params, 0.02);
        let steps = 4;
        let mut last = f32::INFINITY;
        for it in 0..300 {
            let first: f32 = if it % 2 == 0 { 1.0 } else { -1.0 };
            let mut g = Graph::new();
            let mut h = gru.zero_state(&mut g, 1);
            for t in 0..steps {
                let x = g.input(Tensor::from_vec(
                    vec![if t == 0 { first } else { 0.0 }],
                    &[1, 1],
                ));
                h = gru.step(&mut g, x, h);
            }
            let y = head.forward(&mut g, h);
            let loss = g.mse_loss(y, &Tensor::from_vec(vec![first], &[1, 1]));
            last = g.value(loss).item();
            g.backward(loss);
            opt.step();
            opt.zero_grad();
        }
        assert!(last < 0.05, "final loss {last}");
    }

    #[test]
    fn lstm_state_propagates() {
        let mut rng = Rng::seed_from(11);
        let lstm = LstmCell::new(2, 3, &mut rng);
        let mut g = Graph::new();
        let (mut h, mut c) = lstm.zero_state(&mut g, 1);
        for _ in 0..3 {
            let x = g.input(Tensor::ones(&[1, 2]));
            let (h2, c2) = lstm.step(&mut g, x, h, c);
            h = h2;
            c = c2;
        }
        assert!(g.value(h).data().iter().any(|&v| v.abs() > 1e-3));
    }
}

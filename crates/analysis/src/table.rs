//! Plain-text table rendering for the bench harness outputs.

use std::fmt::Write as _;

/// A fixed-column text table printed by the table/figure regeneration
/// benches.
///
/// # Example
///
/// ```
/// use aibench_analysis::TextTable;
/// let mut t = TextTable::new(vec!["benchmark".into(), "epochs".into()]);
/// t.row(vec!["Image Classification".into(), "12".into()]);
/// let s = t.render();
/// assert!(s.contains("Image Classification"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        TextTable {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} vs header {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for r in &self.rows {
            for (c, cell) in r.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for c in 0..cols {
                if c > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:<width$}", cells[c], width = widths[c]);
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            write_row(&mut out, r);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a".into(), "bench".into()]);
        t.row(vec!["1".into(), "x".into()]);
        t.row(vec!["222".into(), "yy".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a  "));
        assert!(lines[1].starts_with("---"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_panics() {
        let mut t = TextTable::new(vec!["a".into()]);
        t.row(vec!["1".into(), "2".into()]);
    }
}

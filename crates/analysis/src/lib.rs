//! Statistical and analytical tooling for the AIBench workload
//! characterization: run-to-run variation statistics (Table 5), min-max
//! normalization and coverage ratios (Figure 1), k-means and t-SNE for the
//! subset-similarity clustering (Figure 4), and plain-text table rendering
//! for the benchmark harnesses.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod coverage;
mod kmeans;
mod stats;
mod table;
mod tsne;

pub use coverage::{range_of, CoverageRange};
pub use kmeans::kmeans;
pub use stats::{coefficient_of_variation, mean, std_dev};
pub use table::TextTable;
pub use tsne::{tsne, TsneParams};

/// Min-max normalizes each column of `rows` into `[0, 1]` (constant
/// columns map to 0.5).
pub fn min_max_normalize(rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
    if rows.is_empty() {
        return Vec::new();
    }
    let dims = rows[0].len();
    let mut lo = vec![f64::INFINITY; dims];
    let mut hi = vec![f64::NEG_INFINITY; dims];
    for r in rows {
        assert_eq!(r.len(), dims, "min_max_normalize: ragged rows");
        for (d, &v) in r.iter().enumerate() {
            lo[d] = lo[d].min(v);
            hi[d] = hi[d].max(v);
        }
    }
    rows.iter()
        .map(|r| {
            r.iter()
                .enumerate()
                .map(|(d, &v)| {
                    if hi[d] > lo[d] {
                        (v - lo[d]) / (hi[d] - lo[d])
                    } else {
                        0.5
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_max_maps_to_unit_interval() {
        let rows = vec![vec![0.0, 10.0], vec![5.0, 20.0], vec![10.0, 15.0]];
        let n = min_max_normalize(&rows);
        assert_eq!(n[0], vec![0.0, 0.0]);
        assert_eq!(n[2], vec![1.0, 0.5]);
    }

    #[test]
    fn constant_column_maps_to_half() {
        let rows = vec![vec![3.0], vec![3.0]];
        let n = min_max_normalize(&rows);
        assert_eq!(n[0][0], 0.5);
    }
}

//! Coverage ranges and ratios for the Figure-1 comparison (AIBench spans a
//! 1.3×-6.4× wider range than MLPerf on every model-characteristic axis).

/// The `[min, max]` coverage of one suite on one characteristic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverageRange {
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
}

impl CoverageRange {
    /// The max/min span ratio (∞ when min is zero).
    pub fn span(&self) -> f64 {
        if self.min <= 0.0 {
            f64::INFINITY
        } else {
            self.max / self.min
        }
    }

    /// Whether this range fully contains `other`.
    pub fn contains(&self, other: &CoverageRange) -> bool {
        self.min <= other.min && self.max >= other.max
    }

    /// Ratio of peak values against another suite (the paper's
    /// "1.3×–6.4×" comparison uses peak numbers).
    pub fn peak_ratio(&self, other: &CoverageRange) -> f64 {
        self.max / other.max.max(1e-12)
    }
}

/// The coverage range of a value list.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn range_of(values: &[f64]) -> CoverageRange {
    assert!(!values.is_empty(), "range of empty slice");
    CoverageRange {
        min: values.iter().copied().fold(f64::INFINITY, f64::min),
        max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_and_span() {
        let r = range_of(&[2.0, 8.0, 4.0]);
        assert_eq!(r.min, 2.0);
        assert_eq!(r.max, 8.0);
        assert_eq!(r.span(), 4.0);
    }

    #[test]
    fn containment() {
        let wide = range_of(&[1.0, 100.0]);
        let narrow = range_of(&[5.0, 50.0]);
        assert!(wide.contains(&narrow));
        assert!(!narrow.contains(&wide));
    }

    #[test]
    fn peak_ratio() {
        let a = range_of(&[1.0, 64.0]);
        let b = range_of(&[1.0, 10.0]);
        assert!((a.peak_ratio(&b) - 6.4).abs() < 1e-12);
    }
}

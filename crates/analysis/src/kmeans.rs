//! Deterministic k-means with k-means++ seeding.

use aibench_tensor::Rng;

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Clusters `points` into `k` groups; returns the assignment per point.
///
/// Runs eight k-means++-seeded Lloyd restarts (derived deterministically
/// from `seed`) and keeps the assignment with the lowest within-cluster
/// sum of squares, which makes small-n clustering robust to local optima.
///
/// # Panics
///
/// Panics if `k` is zero or exceeds the point count, or rows are ragged.
pub fn kmeans(points: &[Vec<f64>], k: usize, seed: u64) -> Vec<usize> {
    let mut best: Option<(f64, Vec<usize>)> = None;
    for restart in 0..8u64 {
        let assign = kmeans_once(
            points,
            k,
            seed.wrapping_add(restart.wrapping_mul(0x9E37_79B9)),
        );
        let inertia = within_cluster_sse(points, k, &assign);
        if best.as_ref().is_none_or(|(b, _)| inertia < *b) {
            best = Some((inertia, assign));
        }
    }
    best.expect("at least one restart").1
}

fn within_cluster_sse(points: &[Vec<f64>], k: usize, assign: &[usize]) -> f64 {
    let dims = points[0].len();
    let mut centers = vec![vec![0.0; dims]; k];
    let mut counts = vec![0usize; k];
    for (p, &a) in points.iter().zip(assign) {
        counts[a] += 1;
        for d in 0..dims {
            centers[a][d] += p[d];
        }
    }
    for (c, &n) in centers.iter_mut().zip(&counts) {
        if n > 0 {
            c.iter_mut().for_each(|v| *v /= n as f64);
        }
    }
    points
        .iter()
        .zip(assign)
        .map(|(p, &a)| sq_dist(p, &centers[a]))
        .sum()
}

fn kmeans_once(points: &[Vec<f64>], k: usize, seed: u64) -> Vec<usize> {
    assert!(
        k > 0 && k <= points.len(),
        "kmeans: k={k} for {} points",
        points.len()
    );
    let dims = points[0].len();
    for p in points {
        assert_eq!(p.len(), dims, "kmeans: ragged rows");
    }
    let mut rng = Rng::seed_from(seed);

    // k-means++ seeding.
    let mut centers: Vec<Vec<f64>> = vec![points[rng.below(points.len())].clone()];
    while centers.len() < k {
        let d2: Vec<f64> = points
            .iter()
            .map(|p| {
                centers
                    .iter()
                    .map(|c| sq_dist(p, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = d2.iter().sum();
        let pick = if total <= 0.0 {
            rng.below(points.len())
        } else {
            let mut r = rng.uniform() as f64 * total;
            let mut idx = 0;
            for (i, &d) in d2.iter().enumerate() {
                r -= d;
                if r <= 0.0 {
                    idx = i;
                    break;
                }
                idx = i;
            }
            idx
        };
        centers.push(points[pick].clone());
    }

    let mut assign = vec![0usize; points.len()];
    for _ in 0..100 {
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| {
                    sq_dist(p, &centers[a])
                        .partial_cmp(&sq_dist(p, &centers[b]))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("k > 0");
            if assign[i] != best {
                assign[i] = best;
                changed = true;
            }
        }
        // Recompute centers.
        for (ci, center) in centers.iter_mut().enumerate() {
            let members: Vec<&Vec<f64>> = points
                .iter()
                .zip(&assign)
                .filter(|(_, &a)| a == ci)
                .map(|(p, _)| p)
                .collect();
            if members.is_empty() {
                continue;
            }
            for d in 0..dims {
                center[d] = members.iter().map(|m| m[d]).sum::<f64>() / members.len() as f64;
            }
        }
        if !changed {
            break;
        }
    }
    assign
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..5 {
            pts.push(vec![0.0 + i as f64 * 0.01, 0.0]);
            pts.push(vec![10.0 + i as f64 * 0.01, 10.0]);
            pts.push(vec![0.0 + i as f64 * 0.01, 10.0]);
        }
        pts
    }

    #[test]
    fn separates_obvious_blobs() {
        let pts = blobs();
        let assign = kmeans(&pts, 3, 1);
        // All points of each blob share a cluster; blobs differ.
        for blob in 0..3 {
            let label = assign[blob];
            for i in 0..5 {
                assert_eq!(assign[3 * i + blob], label, "blob {blob} split");
            }
        }
        assert_ne!(assign[0], assign[1]);
        assert_ne!(assign[1], assign[2]);
        assert_ne!(assign[0], assign[2]);
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = blobs();
        assert_eq!(kmeans(&pts, 3, 7), kmeans(&pts, 3, 7));
    }

    #[test]
    fn k_equals_n_gives_distinct_clusters() {
        let pts = vec![vec![0.0], vec![5.0], vec![10.0]];
        let mut assign = kmeans(&pts, 3, 2);
        assign.sort_unstable();
        assert_eq!(assign, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "kmeans: k=")]
    fn k_larger_than_n_panics() {
        let _ = kmeans(&[vec![1.0]], 2, 0);
    }
}

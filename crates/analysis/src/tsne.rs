//! Exact t-distributed stochastic neighbor embedding (van der Maaten &
//! Hinton), used to reproduce Figure 4's benchmark-similarity map.

use aibench_tensor::Rng;

/// t-SNE hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TsneParams {
    /// Target perplexity of the input-space Gaussian neighborhoods.
    pub perplexity: f64,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Early-exaggeration factor applied for the first quarter of the run.
    pub early_exaggeration: f64,
}

impl Default for TsneParams {
    fn default() -> Self {
        TsneParams {
            perplexity: 5.0,
            iterations: 800,
            learning_rate: 10.0,
            early_exaggeration: 4.0,
        }
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Row-wise conditional affinities with per-point bandwidths found by
/// binary search to match the target perplexity.
fn input_affinities(points: &[Vec<f64>], perplexity: f64) -> Vec<Vec<f64>> {
    let n = points.len();
    let target_entropy = perplexity.ln();
    let mut p = vec![vec![0.0; n]; n];
    for i in 0..n {
        let d2: Vec<f64> = (0..n)
            .map(|j| {
                if i == j {
                    0.0
                } else {
                    sq_dist(&points[i], &points[j])
                }
            })
            .collect();
        let (mut lo, mut hi) = (1e-12f64, 1e12f64);
        let mut beta = 1.0;
        for _ in 0..64 {
            let mut row = vec![0.0; n];
            let mut sum = 0.0;
            for j in 0..n {
                if j != i {
                    row[j] = (-beta * d2[j]).exp();
                    sum += row[j];
                }
            }
            if sum <= 0.0 {
                break;
            }
            // Shannon entropy of the normalized row.
            let mut entropy = 0.0;
            for (j, &rj) in row.iter().enumerate() {
                if j != i && rj > 0.0 {
                    let pj = rj / sum;
                    entropy -= pj * pj.ln();
                }
            }
            if (entropy - target_entropy).abs() < 1e-5 {
                p[i] = row.iter().map(|r| r / sum).collect();
                break;
            }
            if entropy > target_entropy {
                lo = beta;
                beta = if hi >= 1e12 {
                    beta * 2.0
                } else {
                    (beta + hi) / 2.0
                };
            } else {
                hi = beta;
                beta = (beta + lo) / 2.0;
            }
            p[i] = row.iter().map(|r| r / sum).collect();
        }
    }
    // Symmetrize.
    let mut sym = vec![vec![0.0; n]; n];
    let denom = (2 * n) as f64;
    for i in 0..n {
        for j in 0..n {
            sym[i][j] = ((p[i][j] + p[j][i]) / denom).max(1e-12);
        }
    }
    sym
}

/// Embeds `points` into 2-D. Deterministic given `seed`.
///
/// # Panics
///
/// Panics if fewer than three points are given.
pub fn tsne(points: &[Vec<f64>], params: TsneParams, seed: u64) -> Vec<[f64; 2]> {
    let n = points.len();
    assert!(n >= 3, "t-SNE needs at least three points");
    let perplexity = params.perplexity.min((n as f64 - 1.0) / 3.0).max(1.0);
    let p = input_affinities(points, perplexity);

    let mut rng = Rng::seed_from(seed);
    let mut y: Vec<[f64; 2]> = (0..n)
        .map(|_| [rng.normal() as f64 * 1e-2, rng.normal() as f64 * 1e-2])
        .collect();
    let mut vel = vec![[0.0f64; 2]; n];
    let exaggeration_until = params.iterations / 4;

    for it in 0..params.iterations {
        let exag = if it < exaggeration_until {
            params.early_exaggeration
        } else {
            1.0
        };
        // Student-t affinities in the embedding.
        let mut q_num = vec![vec![0.0; n]; n];
        let mut q_sum = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    let d2 = (y[i][0] - y[j][0]).powi(2) + (y[i][1] - y[j][1]).powi(2);
                    q_num[i][j] = 1.0 / (1.0 + d2);
                    q_sum += q_num[i][j];
                }
            }
        }
        // KL gradient with momentum.
        let momentum = if it < exaggeration_until { 0.5 } else { 0.8 };
        for i in 0..n {
            let mut grad = [0.0f64; 2];
            for j in 0..n {
                if i == j {
                    continue;
                }
                let q = (q_num[i][j] / q_sum).max(1e-12);
                let mult = (exag * p[i][j] - q) * q_num[i][j];
                grad[0] += 4.0 * mult * (y[i][0] - y[j][0]);
                grad[1] += 4.0 * mult * (y[i][1] - y[j][1]);
            }
            for d in 0..2 {
                // Clamp the step to keep the tiny-n regime stable.
                vel[i][d] =
                    (momentum * vel[i][d] - params.learning_rate * grad[d]).clamp(-2.0, 2.0);
                y[i][d] += vel[i][d];
            }
        }
        // Re-center so the embedding cannot drift away from the origin.
        let (mx, my) = (
            y.iter().map(|p| p[0]).sum::<f64>() / n as f64,
            y.iter().map(|p| p[1]).sum::<f64>() / n as f64,
        );
        for p in &mut y {
            p[0] -= mx;
            p[1] -= my;
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        let centers = [[0.0, 0.0, 0.0], [8.0, 8.0, 0.0], [0.0, 8.0, 8.0]];
        let mut rng = Rng::seed_from(3);
        for (li, c) in centers.iter().enumerate() {
            for _ in 0..6 {
                pts.push(c.iter().map(|&v| v + rng.normal() as f64 * 0.2).collect());
                labels.push(li);
            }
        }
        (pts, labels)
    }

    /// Mean intra-label distance vs inter-label distance in the embedding.
    fn separation(y: &[[f64; 2]], labels: &[usize]) -> (f64, f64) {
        let mut intra = (0.0, 0usize);
        let mut inter = (0.0, 0usize);
        for i in 0..y.len() {
            for j in i + 1..y.len() {
                let d = ((y[i][0] - y[j][0]).powi(2) + (y[i][1] - y[j][1]).powi(2)).sqrt();
                if labels[i] == labels[j] {
                    intra = (intra.0 + d, intra.1 + 1);
                } else {
                    inter = (inter.0 + d, inter.1 + 1);
                }
            }
        }
        (intra.0 / intra.1 as f64, inter.0 / inter.1 as f64)
    }

    #[test]
    fn blobs_stay_separated_in_embedding() {
        let (pts, labels) = three_blobs();
        let y = tsne(&pts, TsneParams::default(), 1);
        let (intra, inter) = separation(&y, &labels);
        assert!(inter > 2.0 * intra, "intra {intra:.3} vs inter {inter:.3}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (pts, _) = three_blobs();
        let a = tsne(&pts, TsneParams::default(), 9);
        let b = tsne(&pts, TsneParams::default(), 9);
        assert_eq!(a, b);
    }

    #[test]
    fn output_is_finite() {
        let (pts, _) = three_blobs();
        for p in tsne(&pts, TsneParams::default(), 4) {
            assert!(p[0].is_finite() && p[1].is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "at least three")]
    fn too_few_points_panics() {
        let _ = tsne(&[vec![0.0], vec![1.0]], TsneParams::default(), 0);
    }
}

//! Descriptive statistics for the repeatability analysis (Table 5).

/// Arithmetic mean.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of empty slice");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n-1 denominator, as the repeatability
/// literature prescribes). Zero for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Coefficient of variation as a percentage: `100 · σ/μ` — the paper's
/// run-to-run variation measure over epochs-to-quality.
///
/// # Panics
///
/// Panics on an empty slice or zero mean.
pub fn coefficient_of_variation(xs: &[f64]) -> f64 {
    let m = mean(xs);
    assert!(
        m.abs() > 1e-12,
        "coefficient of variation undefined at zero mean"
    );
    100.0 * std_dev(xs) / m.abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_known_values() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample std of this classic set is ~2.138.
        assert!((std_dev(&xs) - 2.13809).abs() < 1e-4);
    }

    #[test]
    fn identical_runs_have_zero_variation() {
        assert_eq!(coefficient_of_variation(&[7.0, 7.0, 7.0, 7.0]), 0.0);
    }

    #[test]
    fn variation_scales_with_spread() {
        let tight = coefficient_of_variation(&[10.0, 10.2, 9.8]);
        let loose = coefficient_of_variation(&[10.0, 14.0, 6.0]);
        assert!(loose > 10.0 * tight);
    }

    #[test]
    fn single_sample_std_is_zero() {
        assert_eq!(std_dev(&[42.0]), 0.0);
    }
}

//! Property-based tests of the analysis toolkit's invariants.

use aibench_analysis::{
    coefficient_of_variation, kmeans, mean, min_max_normalize, range_of, std_dev,
};
use proptest::prelude::*;

fn values() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.1f64..100.0, 2..20)
}

proptest! {
    #[test]
    fn mean_within_range(xs in values()) {
        let m = mean(&xs);
        let r = range_of(&xs);
        prop_assert!(m >= r.min - 1e-9 && m <= r.max + 1e-9);
    }

    #[test]
    fn std_dev_shift_invariant(xs in values(), shift in -50.0f64..50.0) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        prop_assert!((std_dev(&xs) - std_dev(&shifted)).abs() < 1e-6);
    }

    #[test]
    fn cov_scale_invariant(xs in values(), scale in 0.5f64..10.0) {
        let scaled: Vec<f64> = xs.iter().map(|x| x * scale).collect();
        prop_assert!((coefficient_of_variation(&xs) - coefficient_of_variation(&scaled)).abs() < 1e-6);
    }

    #[test]
    fn normalization_lands_in_unit_cube(rows in prop::collection::vec(
        prop::collection::vec(-100.0f64..100.0, 3), 2..10)) {
        for row in min_max_normalize(&rows) {
            for v in row {
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn kmeans_assignments_valid(seed in 0u64..100, k in 1usize..4) {
        let points: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64, (i * i) as f64 * 0.1]).collect();
        let assign = kmeans(&points, k, seed);
        prop_assert_eq!(assign.len(), points.len());
        prop_assert!(assign.iter().all(|&a| a < k));
        // Every cluster id below k appears when duplicate-free points >= k.
        let mut used: Vec<usize> = assign.clone();
        used.sort_unstable();
        used.dedup();
        prop_assert_eq!(used.len(), k);
    }

    #[test]
    fn kmeans_deterministic(seed in 0u64..100) {
        let points: Vec<Vec<f64>> = (0..9).map(|i| vec![(i % 3) as f64 * 10.0, (i / 3) as f64]).collect();
        prop_assert_eq!(kmeans(&points, 3, seed), kmeans(&points, 3, seed));
    }

    #[test]
    fn range_contains_is_reflexive(xs in values()) {
        let r = range_of(&xs);
        prop_assert!(r.contains(&r));
    }
}

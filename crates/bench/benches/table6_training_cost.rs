//! Table 6: training cost of the seventeen AIBench benchmarks — simulated
//! full-scale seconds per epoch times measured epochs-to-quality — plus
//! the Section 5.4.2 subset cost-reduction claims.

use aibench::cost::{subset_saving_pct, training_costs};
use aibench::registry::Registry;
use aibench_analysis::TextTable;
use aibench_bench::{banner, measured_epochs};
use aibench_gpusim::DeviceConfig;
use aibench_gpusim::Simulator;

const SUBSET: [&str; 3] = ["DC-AI-C1", "DC-AI-C9", "DC-AI-C16"];

fn main() {
    banner("Table 6", "training cost per benchmark and subset savings");
    let aibench = Registry::aibench();
    let epochs = measured_epochs(&aibench);
    let costs = training_costs(&aibench, DeviceConfig::titan_rtx(), |b| epochs[b.id.code()]);
    let sim = Simulator::new(DeviceConfig::titan_rtx());

    let mut t = TextTable::new(vec![
        "no.".into(),
        "component benchmark".into(),
        "sim s/epoch".into(),
        "paper s/epoch".into(),
        "epochs".into(),
        "sim total (h)".into(),
        "paper total (h)".into(),
        "sim energy (kWh)".into(),
        "samples/s".into(),
    ]);
    for (c, b) in costs.iter().zip(aibench.benchmarks()) {
        let sps = sim.profile(&b.spec()).samples_per_second();
        t.row(vec![
            c.code.clone(),
            c.task.into(),
            format!("{:.1}", c.sim_seconds_per_epoch),
            c.paper_seconds_per_epoch
                .map_or("-".into(), |v| format!("{v:.1}")),
            format!("{}", c.epochs as usize),
            format!("{:.2}", c.total_hours),
            c.paper_total_hours
                .map_or("N/A".into(), |v| format!("{v:.2}")),
            format!("{:.2}", c.total_kwh),
            format!("{:.0}", sps),
        ]);
    }
    print!("{}", t.render());

    let aibench_total: f64 = costs.iter().map(|c| c.total_hours).sum();
    let saving = subset_saving_pct(&costs, &SUBSET);
    println!();
    println!("AIBench full suite: {aibench_total:.1} simulated hours per pass");
    println!("Subset (C1+C9+C16) saving vs AIBench full: {saving:.0}% (paper: 41%)");

    // MLPerf comparison (Section 5.3.2 / 5.4.2).
    let mlperf = Registry::mlperf();
    let m_epochs = measured_epochs(&mlperf);
    let m_costs = training_costs(&mlperf, DeviceConfig::titan_rtx(), |b| {
        m_epochs[b.id.code()]
    });
    let mlperf_total: f64 = m_costs.iter().map(|c| c.total_hours).sum();
    let subset_total: f64 = costs
        .iter()
        .filter(|c| SUBSET.contains(&c.code.as_str()))
        .map(|c| c.total_hours)
        .sum();
    println!("MLPerf full suite: {mlperf_total:.1} simulated hours per pass");
    println!(
        "Subset saving vs MLPerf: {:.0}% (paper: 63%)",
        100.0 * (1.0 - subset_total / mlperf_total.max(1e-9))
    );
}

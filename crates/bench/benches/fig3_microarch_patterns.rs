//! Figure 3: the computation and memory-access patterns of all 24
//! benchmarks — per-benchmark radar values of the five micro-architectural
//! metrics (1: achieved occupancy; 2: IPC efficiency; 3: gld efficiency;
//! 4: gst efficiency; 5: dram utilization).

use aibench::characterize::microarch_vectors;
use aibench::registry::Registry;
use aibench_analysis::TextTable;
use aibench_bench::banner;
use aibench_gpusim::DeviceConfig;

fn print_suite(name: &str, registry: &Registry) {
    let vectors = microarch_vectors(registry, DeviceConfig::titan_xp());
    let mut t = TextTable::new(vec![
        "benchmark".into(),
        "occupancy".into(),
        "ipc_eff".into(),
        "gld_eff".into(),
        "gst_eff".into(),
        "dram_util".into(),
    ]);
    for (code, m) in &vectors {
        let v = m.as_vector();
        t.row(vec![
            code.clone(),
            format!("{:.3}", v[0]),
            format!("{:.3}", v[1]),
            format!("{:.3}", v[2]),
            format!("{:.3}", v[3]),
            format!("{:.3}", v[4]),
        ]);
    }
    println!("--- {name} ---");
    print!("{}", t.render());
    println!();
}

fn main() {
    banner(
        "Figure 3",
        "computation and memory access patterns of the 24 benchmarks",
    );
    print_suite("AIBench (17)", &Registry::aibench());
    print_suite("MLPerf (7)", &Registry::mlperf());
    println!("Paper shape: IPC efficiency spans from Learning-to-Rank (lowest, data-");
    println!("arrangement bound) to Text-to-Text translation (highest, GEMM bound).");
}

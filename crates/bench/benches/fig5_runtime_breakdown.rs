//! Figure 5: runtime breakdown of every AIBench benchmark into the eight
//! kernel categories.

use aibench::registry::Registry;
use aibench_analysis::TextTable;
use aibench_bench::banner;
use aibench_gpusim::{DeviceConfig, KernelCategory, Simulator};

fn main() {
    banner(
        "Figure 5",
        "runtime breakdown by kernel category (AIBench, 17)",
    );
    let sim = Simulator::new(DeviceConfig::titan_xp());
    let mut header = vec!["benchmark".to_string()];
    header.extend(KernelCategory::ALL.iter().map(|c| c.label().to_string()));
    let mut t = TextTable::new(header);
    for b in Registry::aibench().benchmarks() {
        let p = sim.profile(&b.spec());
        let mut cells = vec![b.id.code().to_string()];
        for cat in KernelCategory::ALL {
            let share = p
                .categories
                .iter()
                .find(|c| c.category == cat)
                .map_or(0.0, |c| c.share);
            cells.push(format!("{:.1}%", 100.0 * share));
        }
        t.row(cells);
    }
    print!("{}", t.render());
    println!();
    println!("Paper shape: Learning-to-Rank spends most of its time on data");
    println!("arrangement; the CNN tasks are convolution-dominated.");
}

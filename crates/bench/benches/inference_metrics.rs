//! Section 4.2.1 online-inference metrics: query latency, tail latency,
//! throughput, and energy per query for every component benchmark (the
//! paper ships an inference variant of each benchmark; this regenerates
//! the metrics its spec lists).

use aibench::inference::inference_table;
use aibench::registry::Registry;
use aibench_analysis::TextTable;
use aibench_bench::banner;
use aibench_gpusim::DeviceConfig;

fn print_suite(name: &str, registry: &Registry) {
    let device = DeviceConfig::titan_xp();
    let mut t = TextTable::new(vec![
        "benchmark".into(),
        "p50 latency (ms)".into(),
        "p99 latency (ms)".into(),
        "throughput (qps)".into(),
        "energy/query (mJ)".into(),
        "batch".into(),
    ]);
    for r in inference_table(registry, &device) {
        t.row(vec![
            r.code,
            format!("{:.3}", r.latency_p50_ms),
            format!("{:.3}", r.latency_p99_ms),
            format!("{:.0}", r.throughput_qps),
            format!("{:.2}", r.energy_per_query_mj),
            r.serving_batch.to_string(),
        ]);
    }
    println!("--- {name} ---");
    print!("{}", t.render());
    println!();
}

fn main() {
    banner(
        "Section 4.2.1",
        "online-inference metrics (latency, tail latency, throughput, energy)",
    );
    print_suite("AIBench (17)", &Registry::aibench());
    print_suite("MLPerf (7)", &Registry::mlperf());
}

//! Checkpoint ablation: snapshot size, snapshot/restore latency, and the
//! end-to-end overhead checkpointing adds to a training session.
//!
//! Two tables:
//!
//! * per-benchmark snapshot cost for one representative model per
//!   architecture family — encoded size, time to snapshot, time to
//!   restore (decode + rebuild-from-seed + load);
//! * training overhead — the same short session run plain and with a
//!   checkpoint every epoch, asserting on the way that the checkpointed
//!   run's result is bitwise identical to the plain one.

use std::hint::black_box;
use std::time::Instant;

use aibench::ckpt::{restore_run, run_to_quality_resumable, snapshot_run, PartialRun};
use aibench::runner::{run_to_quality, RunConfig};
use aibench::Registry;
use aibench_ckpt::MemorySink;

/// Median wall time of `f` in microseconds over `samples` calls.
fn median_us<R>(samples: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_nanos() as f64 / 1_000.0
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

fn main() {
    let registry = Registry::aibench();
    // One representative per family: CNN, RNN, attention, GAN, RL.
    let cases = [
        "DC-AI-C15",
        "DC-AI-C6",
        "DC-AI-C3",
        "DC-AI-C16",
        "DC-AI-C10",
    ];
    let config = RunConfig {
        max_epochs: 2,
        eval_every: 1,
        ..RunConfig::default()
    };

    println!("# Checkpoint cost per benchmark (scaled models, seed 1)");
    println!(
        "{:<12} {:>12} {:>14} {:>14}",
        "benchmark", "bytes", "snapshot_us", "restore_us"
    );
    for code in cases {
        let b = registry.get(code).expect("registered benchmark");
        let mut trainer = b.build(1);
        trainer.train_epoch();
        let progress = PartialRun::fresh();
        let bytes = snapshot_run(b, 1, &config, &progress, trainer.as_ref());
        let snap_us = median_us(9, || {
            snapshot_run(b, 1, &config, &progress, trainer.as_ref())
        });
        let rest_us = median_us(9, || restore_run(b, 1, &config, &bytes).expect("clean"));
        println!(
            "{:<12} {:>12} {:>14.0} {:>14.0}",
            code,
            bytes.len(),
            snap_us,
            rest_us
        );
    }

    println!();
    println!("# Training overhead: checkpoint every epoch vs no checkpoints");
    println!(
        "{:<12} {:>7} {:>12} {:>12} {:>9}",
        "benchmark", "epochs", "plain_ms", "ckpt_ms", "overhead"
    );
    for code in cases {
        let b = registry.get(code).expect("registered benchmark");
        let plain = run_to_quality(b, 1, &config);
        let ckpt_config = RunConfig {
            checkpoint_every: 1,
            ..config
        };
        let mut sink = MemorySink::new();
        let ckpt =
            run_to_quality_resumable(b, 1, &ckpt_config, &mut sink).expect("checkpoint save");
        assert!(
            plain.deterministic_eq(&ckpt),
            "{code}: checkpointing changed the training result"
        );
        println!(
            "{:<12} {:>7} {:>12.1} {:>12.1} {:>8.1}%",
            code,
            plain.epochs_run,
            plain.wall_seconds * 1e3,
            ckpt.wall_seconds * 1e3,
            (ckpt.wall_seconds / plain.wall_seconds - 1.0) * 100.0
        );
    }
}

//! Fault-supervision ablation: what does wrapping the training loop in
//! `aibench-fault`'s supervisor cost when nothing goes wrong?
//!
//! Three configurations of the same short session, per representative
//! benchmark:
//!
//! * **plain** — `run_to_quality`, no supervision;
//! * **sentinels off** — supervised run, empty schedule, every sentinel
//!   disabled (isolates the harness cost: the panic boundary, the epoch
//!   accounting, the per-epoch snapshot);
//! * **supervised** — supervised run, empty schedule, default sentinels
//!   (adds the per-epoch parameter/gradient scan and loss checks).
//!
//! Both supervised runs are asserted bitwise identical to the plain one on
//! the way — the overhead table is only meaningful if supervision is
//! observationally free.
//!
//! A second table measures recovery cost: a NaN loss injected mid-run,
//! reported as the extra epochs executed and the wall-time ratio against
//! the clean supervised run.

use std::time::Instant;

use aibench::runner::{run_to_quality, RunConfig};
use aibench::Registry;
use aibench_fault::{supervised_run, FaultKind, FaultSchedule, SentinelConfig, SupervisorConfig};

/// Median wall seconds of `f` over `samples` calls.
fn median_s(samples: usize, mut f: impl FnMut() -> f64) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

fn main() {
    let registry = Registry::aibench();
    // One representative per family: CNN, RNN, attention, GAN, RL.
    let cases = [
        "DC-AI-C15",
        "DC-AI-C6",
        "DC-AI-C3",
        "DC-AI-C16",
        "DC-AI-C10",
    ];
    let config = RunConfig {
        max_epochs: 4,
        eval_every: 1,
        ..RunConfig::default()
    };
    let empty = FaultSchedule::empty();
    let samples = 5;

    println!("# Supervision overhead on a clean run (empty schedule, seed 1)");
    println!(
        "{:<12} {:>7} {:>10} {:>12} {:>12} {:>9} {:>9}",
        "benchmark", "epochs", "plain_ms", "harness_ms", "sentinel_ms", "harness", "sentinel"
    );
    for code in cases {
        let b = registry.get(code).expect("registered benchmark");
        let off = SupervisorConfig {
            sentinels: SentinelConfig::off(),
            ..SupervisorConfig::default()
        };
        let on = SupervisorConfig::default();

        // Identity first: the numbers below only matter if supervision is
        // observationally free.
        let plain = run_to_quality(b, 1, &config);
        for (label, sup) in [("sentinels off", &off), ("sentinels on", &on)] {
            let run = supervised_run(b, 1, &config, &empty, sup);
            assert!(
                plain.deterministic_eq(&run.result),
                "{code}: supervision ({label}) changed the training result"
            );
            assert_eq!(run.fault_signature(), "clean", "{code}: {label}");
        }

        let plain_s = median_s(samples, || run_to_quality(b, 1, &config).final_quality);
        let harness_s = median_s(samples, || {
            supervised_run(b, 1, &config, &empty, &off)
                .result
                .final_quality
        });
        let sentinel_s = median_s(samples, || {
            supervised_run(b, 1, &config, &empty, &on)
                .result
                .final_quality
        });
        println!(
            "{:<12} {:>7} {:>10.1} {:>12.1} {:>12.1} {:>8.1}% {:>8.1}%",
            code,
            plain.epochs_run,
            plain_s * 1e3,
            harness_s * 1e3,
            sentinel_s * 1e3,
            (harness_s / plain_s - 1.0) * 100.0,
            (sentinel_s / plain_s - 1.0) * 100.0
        );
    }

    println!();
    println!("# Recovery cost: NaN loss at epoch 2, rollback + LR*0.5 (seed 1)");
    println!(
        "{:<12} {:>7} {:>9} {:>10} {:>11} {:>9}",
        "benchmark", "epochs", "executed", "clean_ms", "recover_ms", "ratio"
    );
    for code in cases {
        let b = registry.get(code).expect("registered benchmark");
        let sup = SupervisorConfig::default();
        let schedule = FaultSchedule::new(1).inject(2, FaultKind::LossValue { value: f32::NAN });
        let faulted = supervised_run(b, 1, &config, &schedule, &sup);
        assert!(
            faulted.recoveries > 0,
            "{code}: the injected NaN must trigger a recovery"
        );
        let clean_s = median_s(samples, || {
            supervised_run(b, 1, &config, &empty, &sup)
                .result
                .final_quality
        });
        let recover_s = median_s(samples, || {
            supervised_run(b, 1, &config, &schedule, &sup)
                .result
                .final_quality
        });
        println!(
            "{:<12} {:>7} {:>9} {:>10.1} {:>11.1} {:>8.2}x",
            code,
            faulted.result.epochs_run,
            faulted.epochs_executed,
            clean_s * 1e3,
            recover_s * 1e3,
            recover_s / clean_s
        );
    }
}

//! Serial-vs-parallel ablation: the same kernels timed across a thread
//! sweep (1/2/4/8 by default, or the counts in `AIBENCH_SWEEP`).
//!
//! Because every kernel built on `aibench-parallel` is deterministic by
//! construction, the sweep also *verifies* bitwise identity against the
//! single-threaded baseline while it measures speedup — a corrupted
//! parallel result fails loudly rather than skewing a table.
//!
//! On a single-core host every speedup is ~1.0x (there is nothing to run
//! in parallel on); the table is still useful there as an overhead check.

use std::hint::black_box;
use std::time::Instant;

use aibench_gpusim::ParallelConfig;
use aibench_tensor::ops::{conv2d, conv2d_backward_weight, matmul, max_pool2d, Conv2dArgs};
use aibench_tensor::{Rng, Tensor};

/// Median per-call latency of `f` in nanoseconds over `samples` batches.
fn median_ns<R>(samples: usize, iters: usize, mut f: impl FnMut() -> R) -> f64 {
    for _ in 0..iters.min(5) {
        black_box(f());
    }
    let mut per_call: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    per_call.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    per_call[per_call.len() / 2]
}

/// The thread counts to sweep: `AIBENCH_SWEEP` (comma-separated) or 1,2,4,8.
fn sweep() -> Vec<usize> {
    std::env::var("AIBENCH_SWEEP")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&n| n >= 1)
                .collect()
        })
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8])
}

struct Case {
    name: &'static str,
    samples: usize,
    iters: usize,
    run: Box<dyn FnMut() -> Vec<f32>>,
}

fn main() {
    let mut rng = Rng::seed_from(17);

    let a = Tensor::randn(&[192, 192], &mut rng);
    let b = Tensor::randn(&[192, 192], &mut rng);
    let x = Tensor::randn(&[4, 16, 28, 28], &mut rng);
    let w = Tensor::randn(&[32, 16, 3, 3], &mut rng);
    let args = Conv2dArgs::new(1, 1);
    let y = conv2d(&x, &w, args);
    let gy = Tensor::randn(y.shape(), &mut rng);
    let px = Tensor::randn(&[8, 16, 28, 28], &mut rng);
    let ex = Tensor::randn(&[1, 200_000], &mut rng);

    let mut cases = vec![
        Case {
            name: "matmul_192",
            samples: 15,
            iters: 10,
            run: Box::new(move || matmul(&a, &b).into_vec()),
        },
        Case {
            name: "conv2d_16to32_28px",
            samples: 15,
            iters: 5,
            run: Box::new(move || conv2d(&x, &w, args).into_vec()),
        },
        Case {
            name: "conv2d_bwd_weight",
            samples: 15,
            iters: 5,
            run: {
                let x = Tensor::randn(&[4, 16, 28, 28], &mut rng);
                Box::new(move || conv2d_backward_weight(&x, &gy, (3, 3), args).into_vec())
            },
        },
        Case {
            name: "max_pool2d_8x16_28px",
            samples: 15,
            iters: 20,
            run: Box::new(move || max_pool2d(&px, 2, 2).0.into_vec()),
        },
        Case {
            name: "elementwise_tanh_200k",
            samples: 15,
            iters: 20,
            run: Box::new(move || ex.map(|v| v.tanh()).into_vec()),
        },
    ];

    let threads = sweep();
    println!("# Serial-vs-parallel ablation (AIBENCH_THREADS sweep)");
    println!(
        "# host: {} available core(s); speedup is vs the 1-thread run",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    println!(
        "{:<24} {:>7} {:>14} {:>9}  bitwise",
        "kernel", "threads", "ns/iter", "speedup"
    );
    for case in &mut cases {
        let mut serial_ns = 0.0;
        let mut serial_bits: Vec<u32> = Vec::new();
        for &t in &threads {
            ParallelConfig::with_threads(t).install();
            let bits: Vec<u32> = (case.run)().iter().map(|v| v.to_bits()).collect();
            let ns = median_ns(case.samples, case.iters, &mut case.run);
            let identical = if t == threads[0] {
                serial_ns = ns;
                serial_bits = bits;
                true
            } else {
                bits == serial_bits
            };
            assert!(identical, "{}: {t}-thread result diverged", case.name);
            println!(
                "{:<24} {:>7} {:>14.0} {:>8.2}x  {}",
                case.name,
                t,
                ns,
                serial_ns / ns,
                if identical { "ok" } else { "DIVERGED" }
            );
        }
    }
    ParallelConfig::from_env().install();
}

//! Figure 6 + Table 7: hotspot-function analysis — how many distinct
//! hotspot functions fall into each time-percentage bucket for AIBench vs
//! MLPerf, plus the per-category hotspot names.

use std::collections::BTreeSet;

use aibench::registry::Registry;
use aibench_analysis::TextTable;
use aibench_bench::banner;
use aibench_gpusim::{DeviceConfig, Simulator};

/// Buckets of runtime share: 0-5%, 5-10%, 10-15%, 15%+.
fn bucket(share: f64) -> usize {
    match share {
        s if s < 5.0 => 0,
        s if s < 10.0 => 1,
        s if s < 15.0 => 2,
        _ => 3,
    }
}

fn count_hotspots(registry: &Registry) -> [BTreeSet<String>; 4] {
    let sim = Simulator::new(DeviceConfig::titan_xp());
    let mut buckets: [BTreeSet<String>; 4] = Default::default();
    for b in registry.benchmarks() {
        let p = sim.profile(&b.spec());
        for (name, share) in &p.hotspots {
            // Distinct (benchmark, function) hotspot instances, as nvprof
            // traces them per run.
            buckets[bucket(*share)].insert(format!("{}::{}", b.id.code(), name));
        }
    }
    buckets
}

fn main() {
    banner(
        "Figure 6 / Table 7",
        "hotspot functions by time-percentage bucket",
    );
    let a = count_hotspots(&Registry::aibench());
    let m = count_hotspots(&Registry::mlperf());
    let mut t = TextTable::new(vec![
        "time bucket".into(),
        "AIBench".into(),
        "MLPerf".into(),
    ]);
    for (i, label) in ["0-5%", "5-10%", "10-15%", "15%+"].iter().enumerate() {
        t.row(vec![
            (*label).into(),
            a[i].len().to_string(),
            m[i].len().to_string(),
        ]);
    }
    print!("{}", t.render());
    println!();
    let a10: usize = a[2].len() + a[3].len();
    let m10: usize = m[2].len() + m[3].len();
    println!(">=10% hotspots: AIBench {a10}, MLPerf {m10} (paper: 30 vs 9)");
    println!();

    // Table 7: representative hotspot functions of the suite.
    println!("--- Table 7: hotspot functions by category (AIBench union) ---");
    let sim = Simulator::new(DeviceConfig::titan_xp());
    let mut by_cat: std::collections::BTreeMap<String, BTreeSet<String>> = Default::default();
    for b in Registry::aibench().benchmarks() {
        let p = sim.profile(&b.spec());
        for kp in &p.kernels {
            by_cat
                .entry(kp.kernel.category.label().to_string())
                .or_default()
                .insert(kp.kernel.name.clone());
        }
    }
    for (cat, names) in by_cat {
        println!("{cat}:");
        for n in names {
            println!("    {n}");
        }
    }
}

//! Ablation: the framework's kernel design choices — blocked vs naive
//! GEMM, and im2col vs direct convolution (DESIGN.md section 6).

use std::time::Instant;

use aibench_bench::banner;
use aibench_tensor::ops::{conv2d, matmul, matmul_naive, Conv2dArgs};
use aibench_tensor::{Rng, Tensor};

fn time(label: &str, mut f: impl FnMut()) -> f64 {
    // Warm up once, then take the best of 5.
    f();
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    println!("{label:<42} {:>10.3} ms", best * 1e3);
    best
}

/// Direct convolution reference (no im2col).
fn conv2d_direct(input: &Tensor, weight: &Tensor) -> Tensor {
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (co, _, kh, kw) = (
        weight.shape()[0],
        weight.shape()[1],
        weight.shape()[2],
        weight.shape()[3],
    );
    let (ho, wo) = (h - kh + 1, w - kw + 1);
    let mut out = Tensor::zeros(&[n, co, ho, wo]);
    for s in 0..n {
        for o in 0..co {
            for oy in 0..ho {
                for ox in 0..wo {
                    let mut acc = 0.0;
                    for ci in 0..c {
                        for ky in 0..kh {
                            for kx in 0..kw {
                                acc += input.at(&[s, ci, oy + ky, ox + kx])
                                    * weight.at(&[o, ci, ky, kx]);
                            }
                        }
                    }
                    out.set(&[s, o, oy, ox], acc);
                }
            }
        }
    }
    out
}

fn main() {
    banner(
        "Ablation",
        "framework kernel choices (blocked GEMM, im2col conv)",
    );
    let mut rng = Rng::seed_from(1);
    let a = Tensor::randn(&[128, 128], &mut rng);
    let b = Tensor::randn(&[128, 128], &mut rng);
    let fast = time("matmul 128x128x128 (blocked, i-k-j)", || {
        let _ = matmul(&a, &b);
    });
    let slow = time("matmul 128x128x128 (naive, i-j-k)", || {
        let _ = matmul_naive(&a, &b);
    });
    println!("blocked GEMM speedup: {:.2}x", slow / fast);
    println!();

    let x = Tensor::randn(&[4, 8, 24, 24], &mut rng);
    let w = Tensor::randn(&[16, 8, 3, 3], &mut rng);
    let fast = time("conv2d 8->16 3x3 @24^2 (im2col + GEMM)", || {
        let _ = conv2d(&x, &w, Conv2dArgs::new(1, 0));
    });
    let slow = time("conv2d 8->16 3x3 @24^2 (direct loops)", || {
        let _ = conv2d_direct(&x, &w);
    });
    println!("im2col conv speedup: {:.2}x", slow / fast);
}

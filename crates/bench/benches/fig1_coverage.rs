//! Figure 1: AIBench vs MLPerf coverage — model complexity (parameters),
//! computational cost (FLOPs), convergent rate (epochs), and the five
//! micro-architectural metrics.

use aibench::characterize::{
    excluded_from_model_characteristics, microarch_vectors, model_characteristics,
};
use aibench::registry::Registry;
use aibench_analysis::{range_of, TextTable};
use aibench_bench::{banner, measured_epochs};
use aibench_gpusim::DeviceConfig;

fn main() {
    banner(
        "Figure 1",
        "AIBench vs MLPerf coverage of model and micro-architectural characteristics",
    );

    let aibench = Registry::aibench();
    let mlperf = Registry::mlperf();

    // Figure 1(a): params / FLOPs / epochs ranges.
    let a_chars = model_characteristics(&aibench);
    let m_chars = model_characteristics(&mlperf);
    let a_epochs = measured_epochs(&aibench);
    let m_epochs = measured_epochs(&mlperf);
    let epochs_of =
        |registry: &Registry, map: &std::collections::BTreeMap<String, f64>| -> Vec<f64> {
            registry
                .benchmarks()
                .iter()
                .filter(|b| !excluded_from_model_characteristics(b.id))
                .map(|b| map[b.id.code()])
                .collect()
        };

    let mut t = TextTable::new(vec![
        "characteristic".into(),
        "AIBench range".into(),
        "MLPerf range".into(),
        "peak ratio".into(),
        "AIBench wider?".into(),
    ]);
    let rows: Vec<(&str, Vec<f64>, Vec<f64>)> = vec![
        (
            "parameters (M)",
            a_chars.iter().map(|c| c.params_m).collect(),
            m_chars.iter().map(|c| c.params_m).collect(),
        ),
        (
            "forward M-FLOPs",
            a_chars.iter().map(|c| c.mflops).collect(),
            m_chars.iter().map(|c| c.mflops).collect(),
        ),
        (
            "epochs to quality",
            epochs_of(&aibench, &a_epochs),
            epochs_of(&mlperf, &m_epochs),
        ),
    ];
    for (name, a, m) in rows {
        let (ra, rm) = (range_of(&a), range_of(&m));
        t.row(vec![
            name.into(),
            format!("{:.2} .. {:.1}", ra.min, ra.max),
            format!("{:.2} .. {:.1}", rm.min, rm.max),
            format!("{:.2}x", ra.peak_ratio(&rm)),
            if ra.contains(&rm) {
                "yes".into()
            } else {
                "overlapping".into()
            },
        ]);
    }
    print!("{}", t.render());

    // Figure 1(b): micro-architectural metric coverage.
    println!();
    let a_vec = microarch_vectors(&aibench, DeviceConfig::titan_xp());
    let m_vec = microarch_vectors(&mlperf, DeviceConfig::titan_xp());
    let metric_names = [
        "achieved_occupancy",
        "ipc_efficiency",
        "gld_efficiency",
        "gst_efficiency",
        "dram_utilization",
    ];
    let mut t2 = TextTable::new(vec![
        "micro-arch metric".into(),
        "AIBench range".into(),
        "MLPerf range".into(),
    ]);
    for (i, name) in metric_names.iter().enumerate() {
        let a: Vec<f64> = a_vec.iter().map(|(_, m)| m.as_vector()[i]).collect();
        let m: Vec<f64> = m_vec.iter().map(|(_, mm)| mm.as_vector()[i]).collect();
        let (ra, rm) = (range_of(&a), range_of(&m));
        t2.row(vec![
            (*name).into(),
            format!("{:.3} .. {:.3}", ra.min, ra.max),
            format!("{:.3} .. {:.3}", rm.min, rm.max),
        ]);
    }
    print!("{}", t2.render());
    println!();
    println!("Paper claim: AIBench covers a 1.3x-6.4x broader range than MLPerf on");
    println!("model complexity, computational cost, and convergent rate.");
}

//! Criterion micro-benchmarks of the framework's hot numeric kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use aibench_autograd::{Graph, Param};
use aibench_tensor::ops::{conv2d, matmul, Conv2dArgs};
use aibench_tensor::{Rng, Tensor};

fn bench_ops(c: &mut Criterion) {
    let mut rng = Rng::seed_from(7);
    let a = Tensor::randn(&[64, 64], &mut rng);
    let b = Tensor::randn(&[64, 64], &mut rng);
    c.bench_function("matmul_64", |bench| bench.iter(|| black_box(matmul(&a, &b))));

    let x = Tensor::randn(&[2, 8, 16, 16], &mut rng);
    let w = Tensor::randn(&[16, 8, 3, 3], &mut rng);
    c.bench_function("conv2d_8to16_16px", |bench| {
        bench.iter(|| black_box(conv2d(&x, &w, Conv2dArgs::new(1, 1))))
    });

    let wp = Param::new("w", Tensor::randn(&[64, 64], &mut rng));
    let xb = Tensor::randn(&[32, 64], &mut rng);
    c.bench_function("linear_fwd_bwd_32x64", |bench| {
        bench.iter(|| {
            let mut g = Graph::new();
            let xv = g.input(xb.clone());
            let wv = g.param(&wp);
            let y = g.matmul(xv, wv);
            let sq = g.square(y);
            let loss = g.sum(sq);
            g.backward(loss);
            wp.zero_grad();
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_ops
}
criterion_main!(benches);

//! Micro-benchmarks of the framework's hot numeric kernels.
//!
//! Self-contained timing harness (median of repeated timed batches) so the
//! workspace builds with no external registry access.

use std::hint::black_box;
use std::time::Instant;

use aibench_autograd::{Graph, Param};
use aibench_tensor::ops::{conv2d, matmul, Conv2dArgs};
use aibench_tensor::{Rng, Tensor};

/// Times `f` over `samples` batches of `iters` calls and reports the median
/// per-call latency in nanoseconds.
fn bench<R>(name: &str, samples: usize, iters: usize, mut f: impl FnMut() -> R) {
    // Warm-up.
    for _ in 0..iters.min(10) {
        black_box(f());
    }
    let mut per_call: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    per_call.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = per_call[per_call.len() / 2];
    println!("{name:<28} {median:>12.0} ns/iter   ({samples} samples x {iters} iters)");
}

fn main() {
    let mut rng = Rng::seed_from(7);
    let a = Tensor::randn(&[64, 64], &mut rng);
    let b = Tensor::randn(&[64, 64], &mut rng);
    bench("matmul_64", 20, 50, || matmul(&a, &b));

    let x = Tensor::randn(&[2, 8, 16, 16], &mut rng);
    let w = Tensor::randn(&[16, 8, 3, 3], &mut rng);
    bench("conv2d_8to16_16px", 20, 20, || {
        conv2d(&x, &w, Conv2dArgs::new(1, 1))
    });

    let wp = Param::new("w", Tensor::randn(&[64, 64], &mut rng));
    let xb = Tensor::randn(&[32, 64], &mut rng);
    bench("linear_fwd_bwd_32x64", 20, 20, || {
        let mut g = Graph::new();
        let xv = g.input(xb.clone());
        let wv = g.param(&wp);
        let y = g.matmul(xv, wv);
        let sq = g.square(y);
        let loss = g.sum(sq);
        g.backward(loss);
        wp.zero_grad();
    });
}

//! Figure 2: the scatter of epochs-to-convergent-quality against forward
//! M-FLOPs, with parameter counts, for AIBench (16) and MLPerf (6) models
//! (the reinforcement-learning models are excluded, as in the paper).

use aibench::characterize::{excluded_from_model_characteristics, model_characteristics};
use aibench::registry::Registry;
use aibench_analysis::TextTable;
use aibench_bench::{banner, measured_epochs};

fn print_suite(name: &str, registry: &Registry) {
    let chars = model_characteristics(registry);
    let epochs = measured_epochs(registry);
    let mut t = TextTable::new(vec![
        "benchmark".into(),
        "algorithm".into(),
        "params (M)".into(),
        "M-FLOPs".into(),
        "epochs".into(),
    ]);
    for b in registry.benchmarks() {
        if excluded_from_model_characteristics(b.id) {
            continue;
        }
        let c = chars
            .iter()
            .find(|c| c.code == b.id.code())
            .expect("characterized");
        t.row(vec![
            c.code.clone(),
            c.algorithm.clone(),
            format!("{:.3}", c.params_m),
            format!("{:.2}", c.mflops),
            format!("{}", epochs[b.id.code()] as usize),
        ]);
    }
    println!("--- {name} ---");
    print!("{}", t.render());
    println!();
}

fn main() {
    banner(
        "Figure 2",
        "model complexity, computational cost, and convergent rate",
    );
    print_suite("AIBench (16 of 17; NAS excluded)", &Registry::aibench());
    print_suite("MLPerf (6 of 7; RL excluded)", &Registry::mlperf());
    println!("Paper shape: Object Detection and 3D Object Reconstruction have the");
    println!("largest (and approximately equal) FLOPs; Learning-to-Rank the smallest");
    println!("FLOPs; Image-to-Text the most parameters; Spatial Transformer the");
    println!("fewest; Text-to-Text needs the most epochs.");
}

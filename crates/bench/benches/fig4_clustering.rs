//! Figure 4: t-SNE embedding and clustering of the seventeen AIBench
//! benchmarks' micro-architectural vectors — the subset members land in
//! three different clusters.

use aibench::characterize::combined_features;
use aibench::registry::Registry;
use aibench_analysis::{kmeans, tsne, TextTable, TsneParams};
use aibench_bench::{banner, measured_epochs};
use aibench_gpusim::DeviceConfig;

const SUBSET: [&str; 3] = ["DC-AI-C1", "DC-AI-C9", "DC-AI-C16"];

fn main() {
    banner(
        "Figure 4",
        "t-SNE clustering of the seventeen AIBench benchmarks",
    );
    let registry = Registry::aibench();
    let epochs = measured_epochs(&registry);
    // Features arrive normalized and group-weighted from combined_features.
    let vectors = combined_features(&registry, DeviceConfig::titan_xp(), &epochs);
    let normalized: Vec<Vec<f64>> = vectors.iter().map(|(_, f)| f.clone()).collect();
    let embedding = tsne(&normalized, TsneParams::default(), 42);
    let clusters = kmeans(&normalized, 3, 42);

    let mut t = TextTable::new(vec![
        "benchmark".into(),
        "tsne_x".into(),
        "tsne_y".into(),
        "cluster".into(),
        "in subset".into(),
    ]);
    for (i, (code, _)) in vectors.iter().enumerate() {
        t.row(vec![
            code.clone(),
            format!("{:+.2}", embedding[i][0]),
            format!("{:+.2}", embedding[i][1]),
            format!("{}", clusters[i]),
            if SUBSET.contains(&code.as_str()) {
                "*".into()
            } else {
                String::new()
            },
        ]);
    }
    print!("{}", t.render());

    let subset_clusters: Vec<usize> = vectors
        .iter()
        .enumerate()
        .filter(|(_, (code, _))| SUBSET.contains(&code.as_str()))
        .map(|(i, _)| clusters[i])
        .collect();
    let mut distinct = subset_clusters.clone();
    distinct.sort_unstable();
    distinct.dedup();
    println!();
    println!(
        "Subset clusters: {subset_clusters:?} (distinct: {})",
        distinct.len()
    );
    println!("Paper claim: the subset members fall into three different clusters,");
    println!("so the subset is a minimum set with maximum representativeness.");
}

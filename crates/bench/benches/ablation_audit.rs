//! Sanitizer-mode overhead: the same kernels timed with effect recording
//! compiled in but **off** (the steady state of any build that links
//! `aibench-audit`, e.g. `aibench-check`), and again with recording **on**
//! (the state inside an `--audit` session).
//!
//! Builds *without* the `sanitize` feature are not measurable from this
//! binary — depending on `aibench-audit` compiles the feature in — and do
//! not need to be: every recording hook is an empty `#[inline(always)]`
//! stub there, so the feature-off overhead is zero by construction.
//!
//! Recording-off overhead is one relaxed atomic load per parallel region
//! (not per element), so the "off" column should match the plain
//! `ablation_parallel` numbers; the "on" column pays for access-set
//! bookkeeping behind a mutex and scales with regions recorded, not work
//! done — the per-call ratio shrinks as kernels grow.

use std::hint::black_box;
use std::time::Instant;

use aibench_parallel::effects;
use aibench_tensor::ops::{conv2d, matmul, Conv2dArgs};
use aibench_tensor::{Rng, Tensor};

/// Median per-call latency of `f` in nanoseconds over `samples` batches.
fn median_ns<R>(samples: usize, iters: usize, mut f: impl FnMut() -> R) -> f64 {
    for _ in 0..iters.min(5) {
        black_box(f());
    }
    let mut per_call: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    per_call.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    per_call[per_call.len() / 2]
}

struct Case {
    name: &'static str,
    samples: usize,
    iters: usize,
    run: Box<dyn FnMut() -> f32>,
}

fn main() {
    assert!(
        effects::sanitize_compiled(),
        "this bench must be built with aibench-parallel/sanitize (the \
         aibench-audit dependency turns it on)"
    );
    let mut rng = Rng::seed_from(23);
    let a = Tensor::randn(&[192, 192], &mut rng);
    let b = Tensor::randn(&[192, 192], &mut rng);
    let x = Tensor::randn(&[4, 16, 28, 28], &mut rng);
    let w = Tensor::randn(&[32, 16, 3, 3], &mut rng);
    let args = Conv2dArgs::new(1, 1);
    let sum_buf = Tensor::randn(&[1, 200_000], &mut rng);
    let mut small = Tensor::randn(&[64], &mut rng);

    let mut cases = vec![
        Case {
            name: "matmul_192",
            samples: 15,
            iters: 10,
            run: Box::new(move || matmul(&a, &b).sum()),
        },
        Case {
            name: "conv2d_16to32_28px",
            samples: 15,
            iters: 5,
            run: Box::new(move || conv2d(&x, &w, args).sum()),
        },
        Case {
            name: "sum_f32_200k",
            samples: 15,
            iters: 20,
            run: Box::new(move || aibench_parallel::sum_f32(sum_buf.data())),
        },
        Case {
            // Worst case: a tiny kernel where per-region bookkeeping is
            // the largest share of the runtime.
            name: "map_tanh_64",
            samples: 15,
            iters: 200,
            run: Box::new(move || {
                small.map_inplace(|v| v.tanh());
                small.data()[0]
            }),
        },
    ];

    println!("# Sanitizer-mode overhead (sanitize compiled in)");
    println!(
        "# threads={}; recording-off is the steady state of audit-capable builds",
        aibench_parallel::threads()
    );
    println!(
        "{:<24} {:>14} {:>14} {:>9}",
        "kernel", "off ns/iter", "on ns/iter", "on/off"
    );
    for case in &mut cases {
        let off_ns = median_ns(case.samples, case.iters, &mut case.run);
        effects::start_recording();
        let on_ns = median_ns(case.samples, case.iters, &mut case.run);
        let report = effects::take_report();
        assert!(
            !report.regions.is_empty(),
            "{}: nothing recorded",
            case.name
        );
        println!(
            "{:<24} {:>14.0} {:>14.0} {:>8.2}x",
            case.name,
            off_ns,
            on_ns,
            on_ns / off_ns
        );
    }
}

//! Ablation: subset size — coverage retained vs cost saved for k = 2..5
//! (DESIGN.md section 6; the paper fixes k = 3).

use aibench::characterize::combined_features;
use aibench::cost::{subset_saving_pct, training_costs};
use aibench::registry::Registry;
use aibench::subset::{select_subset, SubsetCandidate};
use aibench_analysis::TextTable;
use aibench_bench::{banner, measured_epochs};
use aibench_gpusim::DeviceConfig;

fn main() {
    banner(
        "Ablation",
        "subset size k: diversity coverage vs cost saving",
    );
    let registry = Registry::aibench();
    let epochs = measured_epochs(&registry);
    // Features arrive normalized and group-weighted from combined_features.
    let vectors = combined_features(&registry, DeviceConfig::titan_xp(), &epochs);
    let normalized: Vec<Vec<f64>> = vectors.iter().map(|(_, f)| f.clone()).collect();
    let costs = training_costs(&registry, DeviceConfig::titan_xp(), |b| epochs[b.id.code()]);

    // Use the paper's Table 5 variations as the repeatability input so the
    // sweep isolates the effect of k.
    let candidates: Vec<SubsetCandidate> = registry
        .benchmarks()
        .iter()
        .zip(&normalized)
        .map(|(b, f)| SubsetCandidate {
            code: b.id.code().to_string(),
            has_accepted_metric: b.has_accepted_metric,
            variation_pct: b.paper.variation_pct,
            features: f.clone(),
        })
        .collect();

    let mut t = TextTable::new(vec![
        "k".into(),
        "subset".into(),
        "cost saving".into(),
        "clusters covered".into(),
    ]);
    for k in 2..=5 {
        let sel = select_subset(&candidates, k, 42);
        let codes: Vec<&str> = sel.chosen.iter().map(String::as_str).collect();
        let saving = subset_saving_pct(&costs, &codes);
        t.row(vec![
            k.to_string(),
            sel.chosen.join(", "),
            format!("{saving:.0}%"),
            format!("{k}/{k}"),
        ]);
    }
    print!("{}", t.render());
    println!();
    println!("The paper picks k = 3: every additional member reduces the saving");
    println!("while diversity coverage is already maximal at three clusters.");
}

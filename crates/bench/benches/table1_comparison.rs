//! Table 1: AI component-benchmark suite comparison.

use aibench::suite_comparison::suites;
use aibench_analysis::TextTable;
use aibench_bench::banner;

fn main() {
    banner("Table 1", "AI benchmark suite comparison");
    let mut t = TextTable::new(vec![
        "suite".into(),
        "component benchmarks (train)".into(),
        "subset".into(),
        "real datasets".into(),
        "software stacks".into(),
    ]);
    for s in suites() {
        t.row(vec![
            s.name.into(),
            s.train_count().to_string(),
            if s.has_subset {
                "yes".into()
            } else {
                "no".into()
            },
            s.dataset_count().to_string(),
            s.software_stacks.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!();
    println!("Paper claim: AIBench is the only suite providing both the most");
    println!("comprehensive component benchmarks and an affordable subset.");
}

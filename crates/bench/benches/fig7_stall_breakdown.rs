//! Figure 7: the eight-way stall breakdown of the eight most
//! time-consuming kernel categories, aggregated over the AIBench suite.

use aibench::registry::Registry;
use aibench_analysis::TextTable;
use aibench_bench::banner;
use aibench_gpusim::{DeviceConfig, KernelCategory, Simulator, StallKind};

fn main() {
    banner(
        "Figure 7",
        "stall breakdown of the hotspot kernel categories",
    );
    let sim = Simulator::new(DeviceConfig::titan_xp());
    // Aggregate time-weighted stalls per category over all benchmarks.
    let mut weights: std::collections::BTreeMap<KernelCategory, [f64; 8]> = Default::default();
    for b in Registry::aibench().benchmarks() {
        let p = sim.profile(&b.spec());
        for cs in &p.categories {
            let acc = weights.entry(cs.category).or_insert([0.0; 8]);
            for (i, (_, share)) in cs.stalls.iter().enumerate() {
                acc[i] += share * cs.share;
            }
        }
    }
    let mut header = vec!["category".to_string()];
    header.extend(StallKind::ALL.iter().map(|s| s.label().to_string()));
    let mut t = TextTable::new(header);
    for (cat, w) in &weights {
        let total: f64 = w.iter().sum();
        let mut cells = vec![cat.label().to_string()];
        cells.extend(w.iter().map(|v| format!("{:.1}%", 100.0 * v / total)));
        t.row(cells);
    }
    print!("{}", t.render());
    println!();
    println!("Paper shape: memory-dependency and execution-dependency stalls are the");
    println!("top two overall; element-wise kernels are ~70% memory-dependency bound.");
}

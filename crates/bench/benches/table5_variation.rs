//! Table 5: run-to-run variation of the seventeen AIBench benchmarks —
//! the coefficient of variation of epochs-to-convergent-quality over
//! repeated entire training sessions.

use aibench::registry::Registry;
use aibench::repeatability::measure_variation;
use aibench_analysis::TextTable;
use aibench_bench::{banner, session_config};

fn main() {
    banner(
        "Table 5",
        "run-to-run variation (coefficient of variation of epochs)",
    );
    let registry = Registry::aibench();
    let cfg = session_config();
    let mut t = TextTable::new(vec![
        "no.".into(),
        "component benchmark".into(),
        "measured variation".into(),
        "repeats".into(),
        "paper variation".into(),
        "epochs per run".into(),
    ]);
    for b in registry.benchmarks() {
        let repeats = (b.paper.repeats.unwrap_or(4) as usize).min(5);
        let rep = measure_variation(b, repeats, &cfg);
        t.row(vec![
            b.id.code().into(),
            b.task.into(),
            rep.variation_pct
                .map_or("Not available".into(), |v| format!("{v:.2}%")),
            rep.runs.to_string(),
            b.paper
                .variation_pct
                .map_or("Not available".into(), |v| format!("{v:.2}%")),
            format!(
                "{:?}",
                rep.epochs.iter().map(|&e| e as usize).collect::<Vec<_>>()
            ),
        ]);
    }
    print!("{}", t.render());
    println!();
    println!("Paper shape: variation differs wildly across benchmarks (0%..38.46%);");
    println!("the GAN tasks have no accepted metric, so no variation is reported.");
}

//! Table 3 (and Table 2's task column): the seventeen component benchmarks
//! with their algorithms, datasets, and quality targets.

use aibench::registry::Registry;
use aibench_analysis::TextTable;
use aibench_bench::banner;

fn main() {
    banner("Table 3", "component benchmarks in AIBench");
    let mut t = TextTable::new(vec![
        "no.".into(),
        "component benchmark".into(),
        "algorithm".into(),
        "dataset (original -> synthetic)".into(),
        "paper target".into(),
        "scaled target".into(),
    ]);
    for b in Registry::aibench().benchmarks() {
        t.row(vec![
            b.id.code().into(),
            b.task.into(),
            b.algorithm.into(),
            b.dataset.into(),
            b.paper.target_quality.into(),
            format!("{} {}", b.metric, b.target),
        ]);
    }
    print!("{}", t.render());
}

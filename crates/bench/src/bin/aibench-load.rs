//! `aibench-load` — the serving load-test harness.
//!
//! Drives a fleet of simulated clients (default: 1000) through the
//! in-process transport of `aibench-serve` and reports throughput, queue
//! wait, and p99/p999 completion latency. With `--baseline` the run is
//! also compared against a serial supervised baseline and rendered as the
//! `serve`-kind entries `aibench-perf` writes into `BENCH_*.json`. With
//! `--chaos SEED` the same workload is additionally soaked under a seeded
//! deterministic chaos schedule, and the recovery traffic (retries,
//! reconnects, redeliveries, sheds) plus the chaos-vs-calm ratio entries
//! are reported.
//!
//! ```text
//! aibench-load [--clients N] [--tenants N] [--budget N] [--epochs N]
//!              [--baseline] [--chaos SEED]
//! ```

use aibench::registry::Registry;
use aibench_bench::load::{
    chaos_entries, render, render_chaos, run_chaos_load, run_load, serial_baseline_seconds,
    serve_entries, LoadParams, LOAD_PROBE,
};

fn usage() -> ! {
    eprintln!(
        "usage: aibench-load [--clients N] [--tenants N] [--budget N] [--epochs N] [--baseline] \
         [--chaos SEED]"
    );
    std::process::exit(2);
}

fn main() {
    let mut params = LoadParams::default();
    let mut baseline = false;
    let mut chaos_seed: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut grab = |what: &str| -> usize {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("--{what} needs a non-negative integer");
                usage()
            })
        };
        match arg.as_str() {
            "--clients" => params.clients = grab("clients"),
            "--tenants" => params.tenants = grab("tenants").max(1),
            "--budget" => params.budget = grab("budget").max(1),
            "--epochs" => params.epochs = grab("epochs").max(1),
            "--baseline" => baseline = true,
            "--chaos" => chaos_seed = Some(grab("chaos") as u64),
            _ => usage(),
        }
    }

    println!(
        "aibench-load: {} clients x {} epochs of {} across {} tenants (budget {})",
        params.clients, params.epochs, LOAD_PROBE, params.tenants, params.budget
    );
    let registry = Registry::aibench();
    let (report, stats) = run_load(&registry, &params);
    assert_eq!(
        stats.completed, params.clients,
        "server dropped sessions: {} of {} finished",
        stats.completed, params.clients
    );
    println!("{}", render(&params, &stats));
    println!(
        "schedule: {} events, signature hash {:016x}",
        report.schedule.len(),
        fxhash(report.schedule_signature().as_bytes()),
    );

    if let Some(seed) = chaos_seed {
        println!("soaking the same workload under chaos seed {seed} ...");
        let (chaos_report, chaos_stats) = run_chaos_load(&registry, &params, seed);
        assert_eq!(
            chaos_stats.completed + chaos_stats.failures,
            params.clients,
            "chaos soak lost track of sessions"
        );
        println!("{}", render_chaos(seed, &chaos_stats));
        println!(
            "chaos log: {} events, signature hash {:016x}",
            chaos_report.chaos_log.len(),
            fxhash(chaos_report.chaos_signature().as_bytes()),
        );
        for e in chaos_entries(&chaos_stats, &stats) {
            println!(
                "  {:<24} {:>12} / {:>12}  ratio {:.3}",
                e.name, e.scalar_ns, e.blocked_ns, e.speedup
            );
        }
    }

    if baseline {
        println!("running serial supervised baseline ...");
        let serial = serial_baseline_seconds(&registry, &params);
        println!("serial baseline  {serial:.2}s");
        for e in serve_entries(&stats, serial) {
            println!(
                "  {:<22} {:>12} / {:>12} ns  ratio {:.3}",
                e.name, e.scalar_ns, e.blocked_ns, e.speedup
            );
        }
    }
}

/// Tiny stable hash so the full signature doesn't flood the terminal.
fn fxhash(bytes: &[u8]) -> u64 {
    bytes.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3)
    })
}

//! `aibench-perf` — the performance-trajectory harness.
//!
//! Runs a fixed suite of kernel and trainer benchmarks, timing each twice
//! in the same process: once on the packed cache-blocked microkernel path
//! and once on the scalar-tiled baseline ([`GemmPath::Scalar`]); both
//! paths are bitwise identical, so the comparison is pure wall-clock. The
//! reduction entry is baselined against a strictly serial scalar sum
//! instead (the lane-blocked reduction has no runtime toggle).
//!
//! Writes a schema-versioned `BENCH_<date>.json` snapshot at the
//! repository root, compares per-suite geomean speedup ratios against the
//! most recent prior snapshot, and exits nonzero if any suite regressed
//! by more than `REGRESSION_THRESHOLD`. See `docs/PERF.md` for the full
//! methodology.
//!
//! Usage: `cargo run --release -p aibench-bench --bin aibench-perf
//! [-- --dry-run] [-- --dir <path>]`

use std::path::{Path, PathBuf};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use aibench::registry::Registry;
use aibench_bench::perf::{
    civil_date, compare, min_ns, PerfEntry, PerfSnapshot, REGRESSION_THRESHOLD, SCHEMA_VERSION,
};
use aibench_tensor::ops::{self, Conv2dArgs, GemmPath};
use aibench_tensor::{Rng, Tensor};

/// Times `reps` interleaved repetition pairs of two measurements (after
/// one untimed warmup of each) and returns the best (minimum) per-call
/// wall time of each in nanoseconds. Interleaving makes slow machine-level
/// drift — frequency scaling, noisy neighbours — hit both measurements
/// equally instead of biasing whichever ran second; taking the minimum
/// discards the one-sided scheduling noise that only ever inflates
/// samples.
fn time_interleaved(reps: usize, mut first: impl FnMut(), mut second: impl FnMut()) -> (u64, u64) {
    first();
    second();
    let mut first_samples = Vec::with_capacity(reps);
    let mut second_samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        first();
        first_samples.push(t.elapsed().as_nanos() as u64);
        let t = Instant::now();
        second();
        second_samples.push(t.elapsed().as_nanos() as u64);
    }
    (min_ns(&first_samples), min_ns(&second_samples))
}

/// Runs one suite member on both GEMM paths (interleaved) and assembles
/// its entry.
fn measure(name: &str, kind: &str, reps: usize, f: impl Fn()) -> PerfEntry {
    let (blocked, scalar) = time_interleaved(
        reps,
        || {
            ops::set_gemm_path(GemmPath::Blocked);
            f();
        },
        || {
            ops::set_gemm_path(GemmPath::Scalar);
            f();
        },
    );
    ops::set_gemm_path(GemmPath::Blocked);
    entry(name, kind, reps, blocked, scalar)
}

fn entry(name: &str, kind: &str, reps: usize, blocked: u64, scalar: u64) -> PerfEntry {
    PerfEntry {
        name: name.to_string(),
        kind: kind.to_string(),
        reps,
        blocked_ns: blocked,
        scalar_ns: scalar,
        speedup: scalar as f64 / blocked.max(1) as f64,
    }
}

fn gemm_suite(entries: &mut Vec<PerfEntry>) {
    // Square sizes spanning L1-resident to L2-spilling working sets, plus
    // two rectangular shapes matching the thin GEMMs the trainers issue.
    let square = [(128usize, 24usize), (192, 12), (256, 9), (384, 5)];
    let mut rng = Rng::seed_from(7);
    for (n, reps) in square {
        let a = Tensor::randn(&[n, n], &mut rng);
        let b = Tensor::randn(&[n, n], &mut rng);
        entries.push(measure(&format!("gemm_{n}"), "gemm", reps, || {
            std::hint::black_box(a.matmul(&b));
        }));
    }
    let rects = [
        ("gemm_64x512x256", 64usize, 512usize, 256usize, 9usize),
        ("gemm_512x64x512", 512, 64, 512, 9),
    ];
    for (name, m, k, n, reps) in rects {
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        entries.push(measure(name, "gemm", reps, || {
            std::hint::black_box(a.matmul(&b));
        }));
    }
}

fn conv_suite(entries: &mut Vec<PerfEntry>) {
    let mut rng = Rng::seed_from(11);
    // A mid-network 3x3 block and a pointwise 1x1 block, NCHW.
    let x3 = Tensor::randn(&[4, 16, 16, 16], &mut rng);
    let w3 = Tensor::randn(&[32, 16, 3, 3], &mut rng);
    let args3 = Conv2dArgs::new(1, 1);
    entries.push(measure("conv3x3_16c_16x16", "conv", 9, || {
        std::hint::black_box(ops::conv2d(&x3, &w3, args3));
    }));

    let x1 = Tensor::randn(&[4, 32, 16, 16], &mut rng);
    let w1 = Tensor::randn(&[64, 32, 1, 1], &mut rng);
    let args1 = Conv2dArgs::new(1, 0);
    entries.push(measure("conv1x1_32c_16x16", "conv", 9, || {
        std::hint::black_box(ops::conv2d(&x1, &w1, args1));
    }));

    let g3 = Tensor::randn(&[4, 32, 16, 16], &mut rng);
    entries.push(measure("conv3x3_bwd_weight", "conv", 9, || {
        std::hint::black_box(ops::conv2d_backward_weight(&x3, &g3, (3, 3), args3));
    }));
}

fn reduce_suite(entries: &mut Vec<PerfEntry>) {
    // Two sizes: a 1M-element DRAM-bound sum (whose floor drifts with
    // memory contention) and a 64K-element cache-resident sum (very
    // stable). The regression gate compares the kind geomean, so the
    // stable entry damps the noisy one. Baseline: the strictly serial
    // left-to-right sum the lane-blocked reduction replaced.
    let mut rng = Rng::seed_from(13);
    for (name, len, reps) in [
        ("reduce_sum_1m", 1usize << 20, 48usize),
        ("reduce_sum_64k", 1 << 16, 48),
    ] {
        let t = Tensor::randn(&[len], &mut rng);
        let data = t.data().to_vec();
        let (lane, serial) = time_interleaved(
            reps,
            || {
                std::hint::black_box(t.sum());
            },
            || {
                let mut acc = 0.0f32;
                for &v in &data {
                    acc += v;
                }
                std::hint::black_box(acc);
            },
        );
        entries.push(entry(name, "reduce", reps, lane, serial));
    }
}

fn trainer_suite(entries: &mut Vec<PerfEntry>) {
    let registry = Registry::aibench();
    // DC-AI-C1: the CNN trainer (conv-heavy); DC-AI-C3: the transformer
    // trainer (self-attention); DC-AI-C14: the attentional GRU seq2seq
    // trainer. One trainer instance per path (same seed, identical work),
    // epochs timed *interleaved* between the paths so slow machine-level
    // drift cancels instead of biasing whichever path ran second.
    for (name, code, reps) in [
        ("trainer_cnn_epoch", "DC-AI-C1", 5usize),
        ("trainer_transformer_epoch", "DC-AI-C3", 5),
        ("trainer_attention_epoch", "DC-AI-C14", 5),
    ] {
        let bench = registry
            .get(code)
            .unwrap_or_else(|| panic!("benchmark {code} not in registry"));
        ops::set_gemm_path(GemmPath::Blocked);
        let mut blocked_trainer = bench.build(1);
        blocked_trainer.train_epoch();
        ops::set_gemm_path(GemmPath::Scalar);
        let mut scalar_trainer = bench.build(1);
        scalar_trainer.train_epoch();
        let mut blocked_samples = Vec::with_capacity(reps);
        let mut scalar_samples = Vec::with_capacity(reps);
        for _ in 0..reps {
            ops::set_gemm_path(GemmPath::Blocked);
            let t = Instant::now();
            std::hint::black_box(blocked_trainer.train_epoch());
            blocked_samples.push(t.elapsed().as_nanos() as u64);
            ops::set_gemm_path(GemmPath::Scalar);
            let t = Instant::now();
            std::hint::black_box(scalar_trainer.train_epoch());
            scalar_samples.push(t.elapsed().as_nanos() as u64);
        }
        ops::set_gemm_path(GemmPath::Blocked);
        entries.push(entry(
            name,
            "trainer",
            reps,
            min_ns(&blocked_samples),
            min_ns(&scalar_samples),
        ));
    }
}

fn dist_suite(entries: &mut Vec<PerfEntry>) {
    use aibench_dist::{run_data_parallel, DistConfig, RunParams};

    // One distributed CNN entry tracking data-parallel scaling overhead:
    // the same DC-AI-C1 epoch run as a 4-worker group vs a 1-worker group
    // through the same engine (identical total examples; the group adds
    // per-replica optimizer steps and the tree all-reduce). The gate
    // quantity is w1_ns / w4_ns — the per-epoch scaling efficiency — so a
    // growing reduction/replication overhead shows up as a falling ratio.
    let registry = Registry::aibench();
    let bench = registry.get("DC-AI-C1").expect("CNN benchmark in registry");
    let factory = |s: u64| {
        bench
            .build_data_parallel(s)
            .expect("DC-AI-C1 trains data-parallel")
    };
    let params = RunParams {
        max_epochs: 1,
        eval_every: 1,
        snapshot_every: 0,
    };
    let never = |_q: f64| false;
    let reps = 3;
    ops::set_gemm_path(GemmPath::Blocked);
    let (w4, w1) = time_interleaved(
        reps,
        || {
            std::hint::black_box(run_data_parallel(
                &factory,
                1,
                &never,
                &params,
                &DistConfig::with_world(4),
            ));
        },
        || {
            std::hint::black_box(run_data_parallel(
                &factory,
                1,
                &never,
                &params,
                &DistConfig::with_world(1),
            ));
        },
    );
    entries.push(entry("dist_cnn_epoch_w4", "dist", reps, w4, w1));
}

fn serve_suite(entries: &mut Vec<PerfEntry>) {
    use aibench_bench::load::{
        chaos_entries, run_chaos_load, run_load, serial_baseline_seconds, serve_entries, LoadParams,
    };

    // The serving subsystem's gate quantities, all same-machine ratios:
    // scheduler efficiency against the bare supervised loop, tail-to-mean
    // completion latency at p99/p999, and queue-wait fairness — measured on
    // the fixed 1000-client load trace (`aibench-load`'s default workload).
    let registry = Registry::aibench();
    let params = LoadParams::default();
    println!(
        "running serve load trace ({} clients) + serial baseline ...",
        params.clients
    );
    ops::set_gemm_path(GemmPath::Blocked);
    let (_, stats) = run_load(&registry, &params);
    assert_eq!(
        stats.completed, params.clients,
        "serve load dropped sessions"
    );
    let serial = serial_baseline_seconds(&registry, &params);
    entries.extend(serve_entries(&stats, serial));

    // The chaos soak of the same trace: recovery traffic and tail ratios
    // under the fixed seed 42. Deterministic (logical counters only), so
    // the ratios are stable across hosts and thread counts.
    println!("soaking the same trace under chaos seed 42 ...");
    let (_, chaos_stats) = run_chaos_load(&registry, &params, 42);
    assert_eq!(
        chaos_stats.completed, params.clients,
        "chaos soak stranded sessions"
    );
    entries.extend(chaos_entries(&chaos_stats, &stats));
}

/// Most recent `BENCH_*.json` in `dir` (lexicographically latest name —
/// the `YYYY-MM-DD` date format makes that chronological), if any.
fn latest_snapshot(dir: &Path) -> Option<(PathBuf, PerfSnapshot)> {
    let mut names: Vec<PathBuf> = std::fs::read_dir(dir)
        .ok()?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    names.sort();
    let path = names.pop()?;
    match std::fs::read_to_string(&path)
        .map_err(|e| e.to_string())
        .and_then(|s| PerfSnapshot::from_json(&s))
    {
        Ok(snap) => Some((path, snap)),
        Err(e) => {
            eprintln!("warning: could not read {}: {e}", path.display());
            None
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dry_run = args.iter().any(|a| a == "--dry-run");
    let dir = args
        .iter()
        .position(|a| a == "--dir")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."));

    aibench_parallel::ParallelConfig::from_env().install();
    println!("aibench-perf ({SCHEMA_VERSION})");
    println!(
        "threads={}  simd={}  dir={}",
        aibench_parallel::threads(),
        cfg!(feature = "simd"),
        dir.display()
    );
    println!();

    let mut entries = Vec::new();
    gemm_suite(&mut entries);
    conv_suite(&mut entries);
    reduce_suite(&mut entries);
    trainer_suite(&mut entries);
    dist_suite(&mut entries);
    serve_suite(&mut entries);

    let now = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .expect("system clock before 1970")
        .as_secs();
    let snapshot = PerfSnapshot {
        schema: SCHEMA_VERSION.to_string(),
        date: civil_date(now),
        threads: aibench_parallel::threads(),
        simd: cfg!(feature = "simd"),
        entries,
    };

    println!(
        "{:<24} {:>6} {:>14} {:>14} {:>9}",
        "benchmark", "kind", "blocked_ns", "scalar_ns", "speedup"
    );
    for e in &snapshot.entries {
        println!(
            "{:<24} {:>6} {:>14} {:>14} {:>8.2}x",
            e.name, e.kind, e.blocked_ns, e.scalar_ns, e.speedup
        );
    }
    println!();
    for kind in ["gemm", "conv", "reduce", "trainer", "dist", "serve"] {
        if let Some(g) = snapshot.geomean_speedup(kind) {
            println!("geomean speedup ({kind:>7}): {g:.2}x");
        }
    }

    let prev = latest_snapshot(&dir);
    let mut regressed = false;
    match &prev {
        Some((path, prev_snap)) => {
            let regs = compare(prev_snap, &snapshot);
            println!();
            println!(
                "compared against {} ({} entries, threshold {:.0}%)",
                path.display(),
                prev_snap.entries.len(),
                REGRESSION_THRESHOLD * 100.0
            );
            if regs.is_empty() {
                println!("no regressions.");
            } else {
                regressed = true;
                for r in &regs {
                    println!(
                        "REGRESSION: {} suite geomean speedup {:.2}x -> {:.2}x (-{:.0}%)",
                        r.kind,
                        r.prev_speedup,
                        r.cur_speedup,
                        r.loss_frac * 100.0
                    );
                }
            }
        }
        None => {
            println!();
            println!("no prior BENCH_*.json snapshot found; nothing to compare.");
        }
    }

    if dry_run {
        println!("--dry-run: not writing a snapshot.");
    } else {
        let out = dir.join(format!("BENCH_{}.json", snapshot.date));
        std::fs::write(&out, snapshot.to_json()).expect("write snapshot");
        println!("wrote {}", out.display());
    }

    if regressed {
        eprintln!("aibench-perf: speedup regression beyond threshold; failing.");
        std::process::exit(1);
    }
}

//! Support types for the `aibench-perf` performance-trajectory harness.
//!
//! The harness (see `src/bin/aibench-perf.rs`) runs a fixed suite of kernel
//! and trainer measurements, each timed twice in the same process: once on
//! the packed microkernel path ([`aibench_tensor::ops::GemmPath::Blocked`])
//! and once on the scalar-tiled baseline path
//! ([`aibench_tensor::ops::GemmPath::Scalar`]). Every entry therefore
//! carries its own in-process baseline, and the quantity the regression
//! gate compares across commits is the **speedup ratio**
//! `scalar_ns / median_ns` — a machine-independent number — never absolute
//! nanoseconds, which vary across CI runners.
//!
//! Results are written as a schema-versioned `BENCH_<date>.json` snapshot
//! at the repository root. [`compare`] diffs two snapshots entry-by-entry
//! and reports every benchmark whose speedup ratio fell by more than
//! [`REGRESSION_THRESHOLD`]; the harness exits nonzero when that list is
//! non-empty, which is what fails the CI `perf` job.
//!
//! The JSON writer and reader here are hand-rolled (the workspace is
//! dependency-free by design); the reader accepts exactly the JSON subset
//! the writer emits plus arbitrary whitespace, and is tested by round-trip.

use std::fmt::Write as _;

/// Schema identifier stamped into every snapshot. Bump the `/vN` suffix on
/// any breaking change to the snapshot layout; [`PerfSnapshot::from_json`]
/// rejects snapshots whose schema string does not match.
pub const SCHEMA_VERSION: &str = "aibench-perf/v1";

/// Fractional speedup loss beyond which a suite counts as regressed.
///
/// The gate compares **per-kind geometric-mean speedups** (not individual
/// entries, whose short runtimes make single ratios noisy): kind `K`
/// regresses when `cur.geomean(K) < prev.geomean(K) * (1 - 0.10)`, i.e.
/// the measured advantage of the microkernel path over the in-process
/// scalar baseline shrank by more than 10 % across the suite.
pub const REGRESSION_THRESHOLD: f64 = 0.10;

/// One measured benchmark in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfEntry {
    /// Stable benchmark name (`gemm_256`, `trainer_cnn_epoch`, ...).
    /// Entries are matched across snapshots by this name.
    pub name: String,
    /// Suite the entry belongs to: `gemm`, `conv`, `reduce`, `trainer`,
    /// or `dist` (where the "baseline" is a 1-worker group and the ratio
    /// is per-epoch data-parallel scaling efficiency).
    pub kind: String,
    /// Number of timed repetitions the minima were taken over.
    pub reps: usize,
    /// Best (minimum) wall time of one repetition on the microkernel
    /// path, in ns. The minimum is the classic noise-robust statistic for
    /// microbenchmarks: one-sided scheduler/frequency noise only ever
    /// inflates samples.
    pub blocked_ns: u64,
    /// Best wall time of one repetition on the scalar baseline, in ns.
    pub scalar_ns: u64,
    /// `scalar_ns / blocked_ns` — the machine-independent gate quantity.
    pub speedup: f64,
}

/// A full `BENCH_<date>.json` snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfSnapshot {
    /// Schema identifier; always [`SCHEMA_VERSION`] for snapshots written
    /// by this build.
    pub schema: String,
    /// Civil date the snapshot was taken (`YYYY-MM-DD`, UTC).
    pub date: String,
    /// Worker-thread count the measurements ran with.
    pub threads: usize,
    /// Whether the binary was built with the `simd` feature.
    pub simd: bool,
    /// The measured suite, in suite order.
    pub entries: Vec<PerfEntry>,
}

impl PerfSnapshot {
    /// Serializes the snapshot as pretty-printed JSON (trailing newline
    /// included, ready to write to disk).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": {},", json_string(&self.schema));
        let _ = writeln!(s, "  \"date\": {},", json_string(&self.date));
        let _ = writeln!(s, "  \"threads\": {},", self.threads);
        let _ = writeln!(s, "  \"simd\": {},", self.simd);
        s.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let comma = if i + 1 < self.entries.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "    {{\"name\": {}, \"kind\": {}, \"reps\": {}, \
                 \"blocked_ns\": {}, \"scalar_ns\": {}, \"speedup\": {:.4}}}{}",
                json_string(&e.name),
                json_string(&e.kind),
                e.reps,
                e.blocked_ns,
                e.scalar_ns,
                e.speedup,
                comma
            );
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parses a snapshot previously written by [`PerfSnapshot::to_json`].
    ///
    /// Returns an error (never panics) on malformed JSON, a missing field,
    /// or a schema string other than [`SCHEMA_VERSION`].
    pub fn from_json(text: &str) -> Result<PerfSnapshot, String> {
        let v = json::parse(text)?;
        let obj = v.as_obj().ok_or("top level is not an object")?;
        let schema = get_str(obj, "schema")?;
        if schema != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema {schema:?} (this build reads {SCHEMA_VERSION:?})"
            ));
        }
        let entries_v = get(obj, "entries")?
            .as_arr()
            .ok_or("\"entries\" is not an array")?;
        let mut entries = Vec::with_capacity(entries_v.len());
        for ev in entries_v {
            let eo = ev.as_obj().ok_or("entry is not an object")?;
            entries.push(PerfEntry {
                name: get_str(eo, "name")?,
                kind: get_str(eo, "kind")?,
                reps: get_num(eo, "reps")? as usize,
                blocked_ns: get_num(eo, "blocked_ns")? as u64,
                scalar_ns: get_num(eo, "scalar_ns")? as u64,
                speedup: get_num(eo, "speedup")?,
            });
        }
        Ok(PerfSnapshot {
            schema,
            date: get_str(obj, "date")?,
            threads: get_num(obj, "threads")? as usize,
            simd: get_bool(obj, "simd")?,
            entries,
        })
    }

    /// Looks up an entry by name.
    pub fn entry(&self, name: &str) -> Option<&PerfEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Geometric-mean speedup over all entries of the given kind, or
    /// `None` if the snapshot has no such entries. This is the headline
    /// number the acceptance gate checks for the `gemm` suite.
    pub fn geomean_speedup(&self, kind: &str) -> Option<f64> {
        let logs: Vec<f64> = self
            .entries
            .iter()
            .filter(|e| e.kind == kind && e.speedup > 0.0)
            .map(|e| e.speedup.ln())
            .collect();
        if logs.is_empty() {
            None
        } else {
            Some((logs.iter().sum::<f64>() / logs.len() as f64).exp())
        }
    }
}

/// One suite (entry `kind`) whose geometric-mean speedup fell by more
/// than [`REGRESSION_THRESHOLD`] between two snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Suite kind (`gemm`, `conv`, `reduce`, `trainer`, `dist`).
    pub kind: String,
    /// Geomean speedup in the previous (reference) snapshot.
    pub prev_speedup: f64,
    /// Geomean speedup in the current snapshot.
    pub cur_speedup: f64,
    /// Fraction of the previous speedup that was lost, in `[0, 1]`.
    pub loss_frac: f64,
}

/// Diffs `cur` against `prev` and returns every regressed suite.
///
/// Suites (entry kinds) are matched by name; kinds present in only one
/// snapshot are ignored (adding or retiring a suite is not a regression).
/// The comparison is on geometric-mean speedup ratios per kind —
/// machine-independent, and averaged across a suite so one noisy entry
/// cannot flap the gate.
pub fn compare(prev: &PerfSnapshot, cur: &PerfSnapshot) -> Vec<Regression> {
    let mut kinds: Vec<&str> = cur.entries.iter().map(|e| e.kind.as_str()).collect();
    kinds.sort_unstable();
    kinds.dedup();
    let mut out = Vec::new();
    for kind in kinds {
        if let (Some(p), Some(c)) = (prev.geomean_speedup(kind), cur.geomean_speedup(kind)) {
            if p > 0.0 && c < p * (1.0 - REGRESSION_THRESHOLD) {
                out.push(Regression {
                    kind: kind.to_string(),
                    prev_speedup: p,
                    cur_speedup: c,
                    loss_frac: 1.0 - c / p,
                });
            }
        }
    }
    out
}

/// Minimum of a sample set. Panics on an empty slice.
pub fn min_ns(samples: &[u64]) -> u64 {
    *samples.iter().min().expect("min of no samples")
}

/// Converts a Unix timestamp (seconds) to a `YYYY-MM-DD` UTC civil date,
/// using the days-to-civil algorithm (Howard Hinnant, public domain).
pub fn civil_date(unix_secs: u64) -> String {
    let days = (unix_secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn get<'a>(obj: &'a [(String, json::Value)], key: &str) -> Result<&'a json::Value, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field {key:?}"))
}

fn get_str(obj: &[(String, json::Value)], key: &str) -> Result<String, String> {
    get(obj, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("field {key:?} is not a string"))
}

fn get_num(obj: &[(String, json::Value)], key: &str) -> Result<f64, String> {
    get(obj, key)?
        .as_num()
        .ok_or_else(|| format!("field {key:?} is not a number"))
}

fn get_bool(obj: &[(String, json::Value)], key: &str) -> Result<bool, String> {
    get(obj, key)?
        .as_bool()
        .ok_or_else(|| format!("field {key:?} is not a boolean"))
}

/// Minimal recursive-descent JSON reader: just enough for the snapshots
/// this module writes (objects, arrays, strings, numbers, booleans, null).
mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any JSON number (integers read exactly up to 2^53).
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, as insertion-ordered key/value pairs.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// The string payload, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }
        /// The numeric payload, if this is a number.
        pub fn as_num(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }
        /// The boolean payload, if this is a boolean.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }
        /// The element list, if this is an array.
        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(a) => Some(a),
                _ => None,
            }
        }
        /// The key/value pairs, if this is an object.
        pub fn as_obj(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(o) => Some(o),
                _ => None,
            }
        }
    }

    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Value, String> {
        let b = text.as_bytes();
        let mut pos = 0;
        let v = value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, *pos))
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => object(b, pos),
            Some(b'[') => array(b, pos),
            Some(b'"') => Ok(Value::Str(string(b, pos)?)),
            Some(b't') => literal(b, pos, "true", Value::Bool(true)),
            Some(b'f') => literal(b, pos, "false", Value::Bool(false)),
            Some(b'n') => literal(b, pos, "null", Value::Null),
            Some(_) => number(b, pos),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", *pos))
        }
    }

    fn object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut out = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            skip_ws(b, pos);
            let key = string(b, pos)?;
            skip_ws(b, pos);
            expect(b, pos, b':')?;
            out.push((key, value(b, pos)?));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
            }
        }
    }

    fn array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut out = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            out.push(value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
            }
        }
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            out.push(char::from_u32(code).ok_or("non-scalar \\u escape")?);
                            *pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", *pos)),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences are
                    // passed through unchanged).
                    let rest = std::str::from_utf8(&b[*pos..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PerfSnapshot {
        PerfSnapshot {
            schema: SCHEMA_VERSION.to_string(),
            date: "2026-08-07".to_string(),
            threads: 4,
            simd: false,
            entries: vec![
                PerfEntry {
                    name: "gemm_256".into(),
                    kind: "gemm".into(),
                    reps: 9,
                    blocked_ns: 1_000_000,
                    scalar_ns: 2_000_000,
                    speedup: 2.0,
                },
                PerfEntry {
                    name: "trainer_cnn_epoch".into(),
                    kind: "trainer".into(),
                    reps: 3,
                    blocked_ns: 50_000_000,
                    scalar_ns: 65_000_000,
                    speedup: 1.3,
                },
            ],
        }
    }

    #[test]
    fn json_round_trips() {
        let snap = sample();
        let text = snap.to_json();
        let back = PerfSnapshot::from_json(&text).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn rejects_wrong_schema() {
        let text = sample().to_json().replace("aibench-perf/v1", "other/v9");
        assert!(PerfSnapshot::from_json(&text).is_err());
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(PerfSnapshot::from_json("{").is_err());
        assert!(PerfSnapshot::from_json("").is_err());
        assert!(PerfSnapshot::from_json("{\"schema\": \"aibench-perf/v1\"}").is_err());
    }

    #[test]
    fn compare_flags_only_large_losses() {
        let prev = sample();
        let mut cur = sample();
        // 5 % loss on the gemm suite: within threshold.
        cur.entries[0].speedup = 1.9;
        assert!(compare(&prev, &cur).is_empty());
        // 25 % loss: flagged.
        cur.entries[0].speedup = 1.5;
        let regs = compare(&prev, &cur);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].kind, "gemm");
        assert!((regs[0].loss_frac - 0.25).abs() < 1e-9);
    }

    #[test]
    fn compare_ignores_added_and_removed_kinds() {
        let prev = sample();
        let mut cur = sample();
        cur.entries.remove(1); // retire the whole `trainer` suite
        cur.entries.push(PerfEntry {
            name: "brand_new".into(),
            kind: "newkind".into(),
            reps: 1,
            blocked_ns: 1,
            scalar_ns: 1,
            speedup: 1.0,
        });
        assert!(compare(&prev, &cur).is_empty());
    }

    #[test]
    fn geomean_is_per_kind() {
        let snap = sample();
        let g = snap.geomean_speedup("gemm").unwrap();
        assert!((g - 2.0).abs() < 1e-12);
        let t = snap.geomean_speedup("trainer").unwrap();
        assert!((t - 1.3).abs() < 1e-12);
        assert!(snap.geomean_speedup("conv").is_none());
    }

    #[test]
    fn civil_date_known_values() {
        assert_eq!(civil_date(0), "1970-01-01");
        // 2026-08-07 00:00:00 UTC.
        assert_eq!(civil_date(1_786_060_800), "2026-08-07");
        // Leap day.
        assert_eq!(civil_date(1_709_164_800), "2024-02-29");
    }

    #[test]
    fn min_is_order_insensitive() {
        assert_eq!(min_ns(&[5, 1, 9, 3, 7]), 1);
        assert_eq!(min_ns(&[2]), 2);
    }
}

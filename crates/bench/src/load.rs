//! The serving load harness: drives thousands of simulated clients
//! through the in-process transport of `aibench-serve` and reports
//! throughput, queue wait, and tail completion latency.
//!
//! Both `aibench-load` (the standalone binary) and the `serve` suite of
//! `aibench-perf` run the workload defined here, so the `BENCH_*.json`
//! serve entries always describe the same fixed trace the load test runs.

use aibench::registry::Registry;
use aibench_chaos::{run_soak, ChaosReport, ChaosSchedule, SoakConfig};
use aibench_fault::{supervised_run, SupervisorConfig};
use aibench_serve::{run_trace, RunRequest, SchedAction, ServeConfig, ServeReport};

use crate::perf::PerfEntry;

/// The load-test workload: a fixed, fully deterministic request trace.
#[derive(Debug, Clone, Copy)]
pub struct LoadParams {
    /// Simulated clients (one request each).
    pub clients: usize,
    /// Tenants the clients are spread across round-robin.
    pub tenants: usize,
    /// Server worker budget.
    pub budget: usize,
    /// Epochs per session.
    pub epochs: usize,
}

impl Default for LoadParams {
    fn default() -> Self {
        LoadParams {
            clients: 1000,
            tenants: 8,
            budget: 8,
            epochs: 2,
        }
    }
}

/// The cheap deterministic probe every load session trains.
pub const LOAD_PROBE: &str = "DC-AI-C15";

/// Builds the workload trace: `clients` requests spread round-robin over
/// `tenants`, arriving in bursts of 32 per tick, with every 97th request
/// arriving at elevated priority so the trace exercises preemption parks
/// and resumes, not just FIFO drain.
pub fn load_trace(params: &LoadParams) -> Vec<(u64, RunRequest)> {
    (0..params.clients)
        .map(|i| {
            let tenant = format!("tenant-{:02}", i % params.tenants.max(1));
            let mut req = RunRequest::new(&tenant, LOAD_PROBE, i as u64 + 1, params.epochs);
            // Evaluate only at the final epoch: the load question is
            // scheduling behavior, not quality traces.
            req.eval_every = params.epochs;
            if i % 97 == 96 {
                req = req.with_priority(3);
            }
            ((i / 32) as u64, req)
        })
        .collect()
}

/// What one load run measured.
#[derive(Debug, Clone)]
pub struct LoadStats {
    /// Sessions that completed.
    pub completed: usize,
    /// Scheduler ticks to drain the trace.
    pub ticks: u64,
    /// End-to-end wall seconds for the whole run.
    pub wall_seconds: f64,
    /// Completed sessions per wall second.
    pub throughput: f64,
    /// Mean submit-to-finish latency, seconds.
    pub mean_latency: f64,
    /// 99th-percentile submit-to-finish latency, seconds.
    pub p99_latency: f64,
    /// 99.9th-percentile submit-to-finish latency, seconds.
    pub p999_latency: f64,
    /// Mean scheduler-tick queue wait before first admission.
    pub mean_queue_wait: f64,
    /// Worst-case queue wait, ticks.
    pub max_queue_wait: u64,
    /// Preemption parks the trace triggered.
    pub parks: usize,
}

/// Sorted-percentile helper (nearest-rank).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Summarizes a replayed load trace.
pub fn stats_of(report: &ServeReport) -> LoadStats {
    let mut latencies: Vec<f64> = report
        .sessions
        .iter()
        .map(|s| s.done.result.wall_seconds)
        .collect();
    latencies.sort_by(f64::total_cmp);
    let waits: Vec<u64> = report
        .sessions
        .iter()
        .map(|s| s.done.queue_wait_ticks)
        .collect();
    let parks = report
        .schedule
        .iter()
        .filter(|e| matches!(e.action, SchedAction::Park { .. }))
        .count();
    let n = report.sessions.len().max(1) as f64;
    LoadStats {
        completed: report.sessions.len(),
        ticks: report.ticks,
        wall_seconds: report.wall_seconds,
        throughput: report.sessions.len() as f64 / report.wall_seconds.max(1e-9),
        mean_latency: latencies.iter().sum::<f64>() / n,
        p99_latency: percentile(&latencies, 0.99),
        p999_latency: percentile(&latencies, 0.999),
        mean_queue_wait: waits.iter().sum::<u64>() as f64 / n,
        max_queue_wait: waits.iter().copied().max().unwrap_or(0),
        parks,
    }
}

/// Replays the load workload through a fresh server.
pub fn run_load(registry: &Registry, params: &LoadParams) -> (ServeReport, LoadStats) {
    let config = ServeConfig {
        budget: params.budget,
        ..ServeConfig::default()
    };
    let report = run_trace(registry, config, &load_trace(params));
    let stats = stats_of(&report);
    (report, stats)
}

/// What one chaos-soaked load run measured: completion and tail latency
/// over the surviving sessions, plus the recovery traffic the injected
/// chaos provoked.
#[derive(Debug, Clone)]
pub struct ChaosLoadStats {
    /// Sessions that completed despite the chaos.
    pub completed: usize,
    /// Sessions that ended in a terminal (non-retryable) failure.
    pub failures: usize,
    /// Scheduler ticks to drain the soak.
    pub ticks: u64,
    /// Chaos injections that actually fired.
    pub chaos_events: usize,
    /// Submit retransmissions clients performed.
    pub retries: u64,
    /// Lease-redeeming reconnects performed.
    pub reconnects: u64,
    /// Buffered events replayed to retransmitting/reconnecting clients.
    pub redeliveries: u64,
    /// Duplicate progress frames dropped by seq deduplication.
    pub duplicates_dropped: u64,
    /// Retryable `overloaded` rejections clients absorbed.
    pub sheds: u64,
    /// Mean submit-to-finish latency, seconds.
    pub mean_latency: f64,
    /// 99th-percentile submit-to-finish latency, seconds.
    pub p99_latency: f64,
    /// 99.9th-percentile submit-to-finish latency, seconds.
    pub p999_latency: f64,
}

/// Summarizes a chaos soak of the load workload.
pub fn chaos_stats_of(report: &ChaosReport) -> ChaosLoadStats {
    let mut latencies: Vec<f64> = report
        .outcomes
        .iter()
        .filter_map(|o| o.done.as_ref().map(|d| d.result.wall_seconds))
        .collect();
    latencies.sort_by(f64::total_cmp);
    let n = latencies.len().max(1) as f64;
    ChaosLoadStats {
        completed: latencies.len(),
        failures: report
            .outcomes
            .iter()
            .filter(|o| o.failure.is_some())
            .count(),
        ticks: report.ticks,
        chaos_events: report.chaos_log.len(),
        retries: report.retries,
        reconnects: report.reconnects,
        redeliveries: report.redeliveries,
        duplicates_dropped: report.duplicates_dropped,
        sheds: report.sheds,
        mean_latency: latencies.iter().sum::<f64>() / n,
        p99_latency: percentile(&latencies, 0.99),
        p999_latency: percentile(&latencies, 0.999),
    }
}

/// Soaks the load workload under a seeded chaos schedule: the same
/// requests as [`load_trace`] (arrival ticks dropped — the soak submits
/// everything up front and lets retry/backoff pace admission), with the
/// injection horizon scaled to the client count so faults land throughout
/// the run rather than bunching at the start.
pub fn run_chaos_load(
    registry: &Registry,
    params: &LoadParams,
    seed: u64,
) -> (ChaosReport, ChaosLoadStats) {
    let requests: Vec<RunRequest> = load_trace(params).into_iter().map(|(_, r)| r).collect();
    let horizon = (params.clients as u64 * 4).max(64);
    let count = (params.clients / 8).max(4);
    let schedule = ChaosSchedule::seeded(seed, horizon, count);
    let config = SoakConfig {
        serve: ServeConfig {
            budget: params.budget,
            ..ServeConfig::default()
        },
        ..SoakConfig::default()
    };
    let report = run_soak(registry, &requests, &schedule, config);
    let stats = chaos_stats_of(&report);
    (report, stats)
}

/// Converts a chaos soak (plus its calm twin's stats) into `serve`-kind
/// perf entries. Like [`serve_entries`], all of these are ratios of
/// same-machine, same-trace measurements:
///
/// * `serve_chaos_soak_1k` — calm ticks / soaked ticks: the deterministic
///   tick overhead of riding out the chaos schedule (falls as recovery
///   replay work grows);
/// * `serve_chaos_tail_p99_1k` / `serve_chaos_tail_p999_1k` — mean / tail
///   completion latency under chaos (falls if chaos blows up the tail);
/// * `serve_chaos_recovery_1k` — completed sessions / (completed +
///   retries + reconnects + redeliveries): the fraction of client traffic
///   that was first-try useful (falls as retry amplification grows).
pub fn chaos_entries(chaos: &ChaosLoadStats, calm: &LoadStats) -> Vec<PerfEntry> {
    let ns = |s: f64| (s * 1e9).max(1.0) as u64;
    let ratio_entry = |name: &str, num: u64, den: u64| PerfEntry {
        name: name.to_string(),
        kind: "serve".to_string(),
        reps: 1,
        blocked_ns: den,
        scalar_ns: num,
        speedup: num as f64 / den.max(1) as f64,
    };
    let recovery = chaos.retries + chaos.reconnects + chaos.redeliveries;
    vec![
        ratio_entry("serve_chaos_soak_1k", calm.ticks.max(1), chaos.ticks.max(1)),
        ratio_entry(
            "serve_chaos_tail_p99_1k",
            ns(chaos.mean_latency),
            ns(chaos.p99_latency),
        ),
        ratio_entry(
            "serve_chaos_tail_p999_1k",
            ns(chaos.mean_latency),
            ns(chaos.p999_latency),
        ),
        ratio_entry(
            "serve_chaos_recovery_1k",
            chaos.completed as u64,
            (chaos.completed as u64 + recovery).max(1),
        ),
    ]
}

/// Renders the chaos-soak stats block `aibench-load --chaos` prints.
pub fn render_chaos(seed: u64, stats: &ChaosLoadStats) -> String {
    format!(
        "chaos seed       {}\n\
         chaos events     {}\n\
         completed        {}\n\
         failures         {}\n\
         ticks            {}\n\
         retries          {}\n\
         reconnects       {}\n\
         redeliveries     {}\n\
         dup frames drop  {}\n\
         sheds absorbed   {}\n\
         latency mean     {:.3}s\n\
         latency p99      {:.3}s\n\
         latency p999     {:.3}s",
        seed,
        stats.chaos_events,
        stats.completed,
        stats.failures,
        stats.ticks,
        stats.retries,
        stats.reconnects,
        stats.redeliveries,
        stats.duplicates_dropped,
        stats.sheds,
        stats.mean_latency,
        stats.p99_latency,
        stats.p999_latency,
    )
}

/// Runs the same sessions back-to-back through the bare supervised loop —
/// the no-scheduler baseline the serve wall time is gated against.
pub fn serial_baseline_seconds(registry: &Registry, params: &LoadParams) -> f64 {
    let start = std::time::Instant::now();
    for (_, req) in load_trace(params) {
        let benchmark = registry.get(&req.code).expect("load probe in registry");
        let config = aibench::runner::RunConfig {
            max_epochs: req.max_epochs,
            eval_every: req.eval_every,
            parallel: None,
            checkpoint_every: 0,
        };
        std::hint::black_box(supervised_run(
            benchmark,
            req.seed,
            &config,
            &req.faults,
            &SupervisorConfig::default(),
        ));
    }
    start.elapsed().as_secs_f64()
}

/// Converts one load run (plus its serial baseline) into `serve`-kind
/// perf entries. All three are ratios of same-machine measurements, so
/// they are stable across hosts:
///
/// * `serve_load_1k` — serial wall / served wall: the scheduler's
///   efficiency against the bare supervised loop (≈1.0; falls if
///   scheduling overhead grows);
/// * `serve_tail_p99_1k` / `serve_tail_p999_1k` — mean latency / tail
///   latency (falls if the tail blows up relative to the mean);
/// * `serve_queue_wait_1k` — mean queue wait / worst queue wait in
///   deterministic ticks (falls if fairness degrades and someone starves).
pub fn serve_entries(stats: &LoadStats, serial_seconds: f64) -> Vec<PerfEntry> {
    let ns = |s: f64| (s * 1e9).max(1.0) as u64;
    let ratio_entry = |name: &str, num: u64, den: u64| PerfEntry {
        name: name.to_string(),
        kind: "serve".to_string(),
        reps: 1,
        blocked_ns: den,
        scalar_ns: num,
        speedup: num as f64 / den.max(1) as f64,
    };
    vec![
        ratio_entry("serve_load_1k", ns(serial_seconds), ns(stats.wall_seconds)),
        ratio_entry(
            "serve_tail_p99_1k",
            ns(stats.mean_latency),
            ns(stats.p99_latency),
        ),
        ratio_entry(
            "serve_tail_p999_1k",
            ns(stats.mean_latency),
            ns(stats.p999_latency),
        ),
        ratio_entry(
            "serve_queue_wait_1k",
            stats.mean_queue_wait.max(1.0) as u64,
            stats.max_queue_wait.max(1),
        ),
    ]
}

/// Renders the stats block both binaries print.
pub fn render(params: &LoadParams, stats: &LoadStats) -> String {
    format!(
        "clients          {}\n\
         tenants          {}\n\
         budget           {}\n\
         completed        {}\n\
         ticks            {}\n\
         wall             {:.2}s\n\
         throughput       {:.1} sessions/s\n\
         latency mean     {:.3}s\n\
         latency p99      {:.3}s\n\
         latency p999     {:.3}s\n\
         queue wait mean  {:.1} ticks\n\
         queue wait max   {} ticks\n\
         preemption parks {}",
        params.clients,
        params.tenants,
        params.budget,
        stats.completed,
        stats.ticks,
        stats.wall_seconds,
        stats.throughput,
        stats.mean_latency,
        stats.p99_latency,
        stats.p999_latency,
        stats.mean_queue_wait,
        stats.max_queue_wait,
        stats.parks,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_load_drains_every_client() {
        let registry = Registry::aibench();
        let params = LoadParams {
            clients: 24,
            tenants: 3,
            budget: 4,
            epochs: 1,
        };
        let (report, stats) = run_load(&registry, &params);
        assert_eq!(stats.completed, 24);
        assert!(stats.p99_latency >= stats.mean_latency);
        assert!(stats.p999_latency >= stats.p99_latency);
        assert!(stats.max_queue_wait as f64 >= stats.mean_queue_wait);
        // Same trace, same schedule: the load harness inherits the serve
        // determinism contract.
        let (again, _) = run_load(&registry, &params);
        assert!(report.deterministic_eq(&again));
    }

    #[test]
    fn chaos_soak_completes_and_replays_bit_for_bit() {
        let registry = Registry::aibench();
        let params = LoadParams {
            clients: 16,
            tenants: 4,
            budget: 4,
            epochs: 1,
        };
        let (report, stats) = run_chaos_load(&registry, &params, 7);
        assert_eq!(stats.completed, 16, "chaos stranded sessions");
        assert_eq!(stats.failures, 0);
        assert!(stats.chaos_events > 0, "seeded schedule never fired");
        // The soak inherits the chaos determinism contract: same seed,
        // same report, down to the recovery-traffic counters.
        let (again, _) = run_chaos_load(&registry, &params, 7);
        assert!(report.deterministic_eq(&again));
        // Chaos must not change result bits: every completed session's
        // result matches the calm serve run of the same request.
        let (calm, calm_stats) = run_load(&registry, &params);
        let calm_results: std::collections::BTreeMap<(String, u64), _> = calm
            .sessions
            .iter()
            .map(|s| ((s.tenant.clone(), s.session), &s.done.result))
            .collect();
        assert_eq!(calm_results.len(), 16);
        for ((tenant, _), done) in report.results() {
            let twin = calm_results
                .iter()
                .find(|((t, _), r)| *t == tenant && r.deterministic_eq(&done.result));
            assert!(twin.is_some(), "no calm twin for a chaos result");
        }
        let entries = chaos_entries(&stats, &calm_stats);
        assert_eq!(entries.len(), 4);
        assert!(entries.iter().all(|e| e.kind == "serve" && e.speedup > 0.0));
    }

    #[test]
    fn trace_spreads_tenants_and_priorities() {
        let params = LoadParams {
            clients: 200,
            tenants: 8,
            budget: 8,
            epochs: 2,
        };
        let trace = load_trace(&params);
        assert_eq!(trace.len(), 200);
        let elevated = trace.iter().filter(|(_, r)| r.priority > 0).count();
        assert_eq!(elevated, 2);
        let tenants: std::collections::BTreeSet<&str> =
            trace.iter().map(|(_, r)| r.tenant.as_str()).collect();
        assert_eq!(tenants.len(), 8);
        assert!(
            trace.windows(2).all(|w| w[0].0 <= w[1].0),
            "arrivals sorted"
        );
    }
}

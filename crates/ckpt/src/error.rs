//! The error type shared by decoding, validation, and restore.

use std::fmt;

/// Everything that can go wrong while decoding a snapshot or restoring
/// state from one.
///
/// Decoding errors carry byte offsets so `aibench-check --ckpt` can point
/// at the defect; restore errors carry the offending key.
#[derive(Debug, Clone, PartialEq)]
pub enum CkptError {
    /// The stream ended before a read completed.
    Truncated {
        /// Byte offset at which the read started.
        offset: usize,
        /// Bytes the read needed.
        needed: usize,
    },
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The format version is not the one this build writes.
    VersionMismatch {
        /// The version found in the header.
        found: u32,
    },
    /// The header checksum does not match its contents.
    HeaderChecksum,
    /// A section's CRC32 does not match its name + payload.
    SectionChecksum {
        /// Name of the failing section (`"?"` if the name itself is
        /// unreadable).
        section: String,
    },
    /// The same section name appears more than once.
    DuplicateSection {
        /// The repeated name.
        section: String,
    },
    /// Bytes remain after the last section the header declared — an orphan
    /// section or appended garbage.
    OrphanBytes {
        /// Offset of the first orphan byte.
        offset: usize,
        /// Number of orphan bytes.
        len: usize,
    },
    /// A required section is absent.
    MissingSection {
        /// The absent section.
        section: String,
    },
    /// A required key is absent from a section.
    MissingKey {
        /// The absent key.
        key: String,
    },
    /// A key holds a different value type than the reader expected.
    WrongType {
        /// The offending key.
        key: String,
        /// The type the reader asked for.
        expected: &'static str,
    },
    /// A tensor value's shape differs from the destination's.
    ShapeMismatch {
        /// The offending key.
        key: String,
        /// Shape of the destination.
        expected: Vec<usize>,
        /// Shape found in the snapshot.
        found: Vec<usize>,
    },
    /// The payload bytes are structurally invalid (bad tag, impossible
    /// length, non-UTF-8 name…).
    Malformed {
        /// Byte offset of the defect within the stream.
        offset: usize,
        /// Human-readable description.
        what: String,
    },
    /// The snapshot's metadata does not match the run being resumed
    /// (different benchmark, seed, or run configuration).
    MetaMismatch {
        /// What disagreed.
        what: String,
    },
    /// A sink failed to store or retrieve snapshot bytes (disk full,
    /// permission denied, injected `FailingSink` fault, …). The message is
    /// the underlying I/O error's text — `std::io::Error` itself is neither
    /// `Clone` nor `PartialEq`, so only its description crosses this
    /// boundary.
    Io {
        /// The failed operation (`"save"` / `"load"`) and target.
        op: String,
        /// The underlying error's description.
        what: String,
    },
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Truncated { offset, needed } => {
                write!(f, "truncated: needed {needed} byte(s) at offset {offset}")
            }
            CkptError::BadMagic => write!(f, "bad magic (not an aibench snapshot)"),
            CkptError::VersionMismatch { found } => {
                write!(
                    f,
                    "format version {found} (this build reads version {})",
                    crate::FORMAT_VERSION
                )
            }
            CkptError::HeaderChecksum => write!(f, "header checksum mismatch"),
            CkptError::SectionChecksum { section } => {
                write!(f, "section `{section}`: CRC32 mismatch")
            }
            CkptError::DuplicateSection { section } => {
                write!(f, "section `{section}` appears more than once")
            }
            CkptError::OrphanBytes { offset, len } => {
                write!(
                    f,
                    "{len} orphan byte(s) at offset {offset} after the declared sections"
                )
            }
            CkptError::MissingSection { section } => write!(f, "missing section `{section}`"),
            CkptError::MissingKey { key } => write!(f, "missing key `{key}`"),
            CkptError::WrongType { key, expected } => {
                write!(f, "key `{key}`: expected a {expected} value")
            }
            CkptError::ShapeMismatch {
                key,
                expected,
                found,
            } => write!(
                f,
                "key `{key}`: shape {found:?} does not match destination {expected:?}"
            ),
            CkptError::Malformed { offset, what } => {
                write!(f, "malformed at offset {offset}: {what}")
            }
            CkptError::MetaMismatch { what } => write!(f, "metadata mismatch: {what}"),
            CkptError::Io { op, what } => write!(f, "checkpoint I/O failure during {op}: {what}"),
        }
    }
}

impl std::error::Error for CkptError {}

//! `aibench-ckpt`: the deterministic checkpoint/restore subsystem.
//!
//! Every kernel in this workspace is bit-reproducible given a seed and the
//! thread count never changes results, so a training session interrupted at
//! any epoch boundary can — in principle — resume to a **bitwise identical**
//! outcome. This crate supplies the pieces that turn that principle into a
//! checked guarantee:
//!
//! * [`State`] — an ordered, typed key/value tree into which every stateful
//!   component (tensors, RNGs, optimizer moments, running statistics,
//!   epoch counters) writes its mutable state.
//! * [`Snapshot`] / [`Restore`] — the traits components implement, keyed by
//!   a dotted prefix so nested components compose (`"opt.p3.value"`).
//! * [`SnapshotFile`] — a versioned, checksummed binary container: magic +
//!   header + one CRC32-guarded section per subsystem. Single-byte
//!   corruption anywhere in a file is always detected (property-tested).
//! * [`CheckpointSink`] — where snapshot bytes go: [`MemorySink`] for tests
//!   and fault injection, [`DirSink`] for real interrupted runs, and
//!   [`FailingSink`] as the scheduled-I/O-failure test double. Storage
//!   failures surface as typed [`CkptError::Io`] values, never silently.
//! * [`validate`] — a lint-grade walker that collects *every* defect in a
//!   byte stream (bad magic, version mismatch, checksum failures,
//!   truncation, orphan trailing bytes, duplicate sections) instead of
//!   stopping at the first, for `aibench-check --ckpt`.
//!
//! The crate is deliberately at the bottom of the workspace: it depends on
//! nothing (std only), and `tensor`, `autograd`, `nn`, `data`, `models`,
//! and `core` all implement its traits for their own types.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod crc32;
mod error;
mod format;
mod sink;
mod state;

pub use crc32::crc32;
pub use error::CkptError;
pub use format::{validate, SnapshotFile, FORMAT_VERSION, MAGIC};
pub use sink::{CheckpointSink, DirSink, FailingSink, MemorySink};
pub use state::{key, Restore, Snapshot, State, Value};

//! The typed, ordered key/value tree snapshots are built from, and the
//! [`Snapshot`]/[`Restore`] traits stateful components implement.

use crate::CkptError;

/// One value in a [`State`].
///
/// Floating-point values are stored and compared by their raw bit patterns,
/// so round-trips are bit-exact (including NaN payloads and signed zeros).
#[derive(Debug, Clone)]
pub enum Value {
    /// An unsigned integer (counters, element counts).
    U64(u64),
    /// A single `f32` (learning rates, scalar baselines).
    F32(f32),
    /// A single `f64` (quality metrics).
    F64(f64),
    /// A boolean flag.
    Bool(bool),
    /// A UTF-8 string (benchmark codes, provenance).
    Str(String),
    /// A dense `f32` tensor: shape plus row-major data.
    F32s {
        /// Dimensions, outermost first.
        shape: Vec<usize>,
        /// Row-major elements; length equals the shape product.
        data: Vec<f32>,
    },
    /// A list of unsigned integers (epoch indices).
    U64s(Vec<u64>),
    /// A list of `f64` values (quality traces).
    F64s(Vec<f64>),
}

impl PartialEq for Value {
    /// Bitwise equality: two float values are equal iff their bit patterns
    /// are, so `NaN == NaN` here (deliberately — snapshots must round-trip
    /// NaN quality values exactly).
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::U64(a), Value::U64(b)) => a == b,
            (Value::F32(a), Value::F32(b)) => a.to_bits() == b.to_bits(),
            (Value::F64(a), Value::F64(b)) => a.to_bits() == b.to_bits(),
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (
                Value::F32s {
                    shape: sa,
                    data: da,
                },
                Value::F32s {
                    shape: sb,
                    data: db,
                },
            ) => {
                sa == sb
                    && da.len() == db.len()
                    && da.iter().zip(db).all(|(x, y)| x.to_bits() == y.to_bits())
            }
            (Value::U64s(a), Value::U64s(b)) => a == b,
            (Value::F64s(a), Value::F64s(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
            }
            _ => false,
        }
    }
}

/// Joins a component prefix and a field name into a dotted key.
///
/// An empty prefix yields the bare field name, so top-level components and
/// nested ones share one convention.
///
/// # Example
///
/// ```
/// assert_eq!(aibench_ckpt::key("opt", "lr"), "opt.lr");
/// assert_eq!(aibench_ckpt::key("", "epoch"), "epoch");
/// ```
pub fn key(prefix: &str, field: &str) -> String {
    if prefix.is_empty() {
        field.to_string()
    } else {
        format!("{prefix}.{field}")
    }
}

/// An ordered collection of typed key/value entries — the in-memory form
/// of one snapshot section.
///
/// Insertion order is preserved and keys are unique (duplicate insertion is
/// a programming error and panics), so encoding a `State` is deterministic:
/// the same state always produces the same bytes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct State {
    entries: Vec<(String, Value)>,
}

impl State {
    /// An empty state.
    pub fn new() -> Self {
        State::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the state holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Inserts an entry.
    ///
    /// # Panics
    ///
    /// Panics if `key` is already present — components must write each key
    /// exactly once, under their own prefix.
    pub fn put(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        assert!(
            !self.entries.iter().any(|(k, _)| *k == key),
            "duplicate snapshot key `{key}`"
        );
        self.entries.push((key, value));
    }

    /// Inserts a `u64`.
    pub fn put_u64(&mut self, key: impl Into<String>, v: u64) {
        self.put(key, Value::U64(v));
    }

    /// Inserts a `usize` (stored as `u64`).
    pub fn put_usize(&mut self, key: impl Into<String>, v: usize) {
        self.put(key, Value::U64(v as u64));
    }

    /// Inserts an `f32`.
    pub fn put_f32(&mut self, key: impl Into<String>, v: f32) {
        self.put(key, Value::F32(v));
    }

    /// Inserts an `f64`.
    pub fn put_f64(&mut self, key: impl Into<String>, v: f64) {
        self.put(key, Value::F64(v));
    }

    /// Inserts a boolean.
    pub fn put_bool(&mut self, key: impl Into<String>, v: bool) {
        self.put(key, Value::Bool(v));
    }

    /// Inserts a string.
    pub fn put_str(&mut self, key: impl Into<String>, v: impl Into<String>) {
        self.put(key, Value::Str(v.into()));
    }

    /// Inserts an `f32` tensor as shape + row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the shape product.
    pub fn put_f32s(&mut self, key: impl Into<String>, shape: &[usize], data: Vec<f32>) {
        let expected: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            expected,
            "put_f32s: {} element(s) do not fit shape {shape:?}",
            data.len()
        );
        self.put(
            key,
            Value::F32s {
                shape: shape.to_vec(),
                data,
            },
        );
    }

    /// Inserts a `u64` list.
    pub fn put_u64s(&mut self, key: impl Into<String>, v: Vec<u64>) {
        self.put(key, Value::U64s(v));
    }

    /// Inserts an `f64` list.
    pub fn put_f64s(&mut self, key: impl Into<String>, v: Vec<f64>) {
        self.put(key, Value::F64s(v));
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Result<&Value, CkptError> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| CkptError::MissingKey {
                key: key.to_string(),
            })
    }

    fn wrong_type(&self, key: &str, expected: &'static str) -> CkptError {
        CkptError::WrongType {
            key: key.to_string(),
            expected,
        }
    }

    /// Reads a `u64`.
    pub fn u64(&self, key: &str) -> Result<u64, CkptError> {
        match self.get(key)? {
            Value::U64(v) => Ok(*v),
            _ => Err(self.wrong_type(key, "u64")),
        }
    }

    /// Reads a `usize`.
    pub fn usize(&self, key: &str) -> Result<usize, CkptError> {
        Ok(self.u64(key)? as usize)
    }

    /// Reads an `f32`.
    pub fn f32(&self, key: &str) -> Result<f32, CkptError> {
        match self.get(key)? {
            Value::F32(v) => Ok(*v),
            _ => Err(self.wrong_type(key, "f32")),
        }
    }

    /// Reads an `f64`.
    pub fn f64(&self, key: &str) -> Result<f64, CkptError> {
        match self.get(key)? {
            Value::F64(v) => Ok(*v),
            _ => Err(self.wrong_type(key, "f64")),
        }
    }

    /// Reads a boolean.
    pub fn bool(&self, key: &str) -> Result<bool, CkptError> {
        match self.get(key)? {
            Value::Bool(v) => Ok(*v),
            _ => Err(self.wrong_type(key, "bool")),
        }
    }

    /// Reads a string.
    pub fn str(&self, key: &str) -> Result<&str, CkptError> {
        match self.get(key)? {
            Value::Str(v) => Ok(v),
            _ => Err(self.wrong_type(key, "str")),
        }
    }

    /// Reads an `f32` tensor as `(shape, data)`.
    pub fn f32s(&self, key: &str) -> Result<(&[usize], &[f32]), CkptError> {
        match self.get(key)? {
            Value::F32s { shape, data } => Ok((shape, data)),
            _ => Err(self.wrong_type(key, "f32 tensor")),
        }
    }

    /// Reads a `u64` list.
    pub fn u64s(&self, key: &str) -> Result<&[u64], CkptError> {
        match self.get(key)? {
            Value::U64s(v) => Ok(v),
            _ => Err(self.wrong_type(key, "u64 list")),
        }
    }

    /// Reads an `f64` list.
    pub fn f64s(&self, key: &str) -> Result<&[f64], CkptError> {
        match self.get(key)? {
            Value::F64s(v) => Ok(v),
            _ => Err(self.wrong_type(key, "f64 list")),
        }
    }
}

/// A component whose mutable state can be captured into a [`State`].
///
/// Implementations write every field that changes during training under
/// `prefix` (via [`key`]), in a fixed order, so that a snapshot taken after
/// a restore is byte-identical to the snapshot restored from.
pub trait Snapshot {
    /// Writes this component's mutable state into `state` under `prefix`.
    fn snapshot(&self, state: &mut State, prefix: &str);
}

/// A component whose mutable state can be restored from a [`State`].
///
/// The component must already have the right *structure* (shapes, parameter
/// counts) — restore replaces values, it does not rebuild architecture.
/// Implementations must either fully succeed or return an error; a failed
/// restore leaves the component in an unspecified state and the caller is
/// expected to rebuild it before retrying.
pub trait Restore {
    /// Reads this component's mutable state from `state` under `prefix`.
    fn restore(&mut self, state: &State, prefix: &str) -> Result<(), CkptError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_get_round_trip() {
        let mut s = State::new();
        s.put_u64("a", 7);
        s.put_f32("b", 1.5);
        s.put_f64("c", -2.25);
        s.put_bool("d", true);
        s.put_str("e", "hello");
        s.put_f32s("f", &[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        s.put_u64s("g", vec![1, 2, 3]);
        s.put_f64s("h", vec![0.5, 0.25]);
        assert_eq!(s.u64("a").unwrap(), 7);
        assert_eq!(s.f32("b").unwrap(), 1.5);
        assert_eq!(s.f64("c").unwrap(), -2.25);
        assert!(s.bool("d").unwrap());
        assert_eq!(s.str("e").unwrap(), "hello");
        assert_eq!(s.f32s("f").unwrap().0, &[2, 2]);
        assert_eq!(s.u64s("g").unwrap(), &[1, 2, 3]);
        assert_eq!(s.f64s("h").unwrap(), &[0.5, 0.25]);
    }

    #[test]
    fn missing_and_mistyped_keys_error() {
        let mut s = State::new();
        s.put_u64("a", 1);
        assert!(matches!(s.u64("b"), Err(CkptError::MissingKey { .. })));
        assert!(matches!(s.f32("a"), Err(CkptError::WrongType { .. })));
    }

    #[test]
    #[should_panic(expected = "duplicate snapshot key")]
    fn duplicate_key_panics() {
        let mut s = State::new();
        s.put_u64("a", 1);
        s.put_u64("a", 2);
    }

    #[test]
    fn nan_values_compare_equal_bitwise() {
        let mut a = State::new();
        a.put_f64("q", f64::NAN);
        let mut b = State::new();
        b.put_f64("q", f64::NAN);
        assert_eq!(a, b);
    }

    #[test]
    fn key_joins_with_dots() {
        assert_eq!(key("opt.p3", "value"), "opt.p3.value");
        assert_eq!(key("", "epoch"), "epoch");
    }
}

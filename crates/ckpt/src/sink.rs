//! Where snapshot bytes live between the save and the (possibly much later)
//! resume.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// A store for epoch-indexed snapshots.
///
/// The resumable runner saves through this trait and, on restart, walks
/// [`CheckpointSink::epochs`] from newest to oldest looking for the latest
/// snapshot that still validates. Implementations keep whole byte blobs;
/// integrity is the format's job, not the sink's.
pub trait CheckpointSink {
    /// Stores the snapshot taken at the end of `epoch`, replacing any
    /// previous bytes for that epoch.
    fn save(&mut self, epoch: usize, bytes: &[u8]);

    /// Epochs with a stored snapshot, ascending.
    fn epochs(&self) -> Vec<usize>;

    /// Loads the snapshot for `epoch`, if one is stored.
    fn load(&self, epoch: usize) -> Option<Vec<u8>>;

    /// Drops the snapshot for `epoch`, if present.
    fn remove(&mut self, epoch: usize);
}

/// An in-memory sink for tests and fault-injection harnesses.
///
/// Doubles as the corruption bench: tests can grab the stored bytes with
/// [`MemorySink::bytes_mut`] and flip bits in place.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    snapshots: BTreeMap<usize, Vec<u8>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Mutable access to the stored bytes for `epoch` (for corruption
    /// tests).
    pub fn bytes_mut(&mut self, epoch: usize) -> Option<&mut Vec<u8>> {
        self.snapshots.get_mut(&epoch)
    }
}

impl CheckpointSink for MemorySink {
    fn save(&mut self, epoch: usize, bytes: &[u8]) {
        self.snapshots.insert(epoch, bytes.to_vec());
    }

    fn epochs(&self) -> Vec<usize> {
        self.snapshots.keys().copied().collect()
    }

    fn load(&self, epoch: usize) -> Option<Vec<u8>> {
        self.snapshots.get(&epoch).cloned()
    }

    fn remove(&mut self, epoch: usize) {
        self.snapshots.remove(&epoch);
    }
}

/// A sink writing one `{prefix}-e{epoch:06}.aickpt` file per epoch under a
/// directory — the store real interrupted runs resume from.
///
/// Saves go through a `.tmp` sibling and a rename, so a crash mid-write
/// leaves either the old complete file or a `.tmp` the sink ignores, never
/// a half-written snapshot under the final name. (Even without the rename
/// the format would catch the truncation — this just keeps the newest
/// *valid* snapshot newer.)
#[derive(Debug, Clone)]
pub struct DirSink {
    dir: PathBuf,
    prefix: String,
}

impl DirSink {
    /// A sink over `dir` (created if absent) with the given filename
    /// prefix, typically the benchmark code.
    pub fn new(dir: impl Into<PathBuf>, prefix: impl Into<String>) -> std::io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(DirSink {
            dir,
            prefix: prefix.into(),
        })
    }

    /// The file path used for `epoch`.
    pub fn path_for(&self, epoch: usize) -> PathBuf {
        self.dir.join(format!("{}-e{epoch:06}.aickpt", self.prefix))
    }

    fn epoch_of(&self, file_name: &str) -> Option<usize> {
        let rest = file_name.strip_prefix(&self.prefix)?.strip_prefix("-e")?;
        rest.strip_suffix(".aickpt")?.parse().ok()
    }
}

impl CheckpointSink for DirSink {
    fn save(&mut self, epoch: usize, bytes: &[u8]) {
        let path = self.path_for(epoch);
        let tmp = path.with_extension("aickpt.tmp");
        // I/O failures surface as a missing snapshot at resume, which the
        // runner already tolerates; a sink cannot do better than that.
        let wrote = fs::File::create(&tmp)
            .and_then(|mut f| f.write_all(bytes).and(f.sync_all()))
            .is_ok();
        if wrote {
            let _ = fs::rename(&tmp, &path);
        } else {
            let _ = fs::remove_file(&tmp);
        }
    }

    fn epochs(&self) -> Vec<usize> {
        let mut out: Vec<usize> = match fs::read_dir(&self.dir) {
            Ok(entries) => entries
                .filter_map(|e| e.ok())
                .filter_map(|e| self.epoch_of(&e.file_name().to_string_lossy()))
                .collect(),
            Err(_) => Vec::new(),
        };
        out.sort_unstable();
        out.dedup();
        out
    }

    fn load(&self, epoch: usize) -> Option<Vec<u8>> {
        fs::read(self.path_for(epoch)).ok()
    }

    fn remove(&mut self, epoch: usize) {
        let _ = fs::remove_file(self.path_for(epoch));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_round_trips_and_orders_epochs() {
        let mut sink = MemorySink::new();
        sink.save(10, b"ten");
        sink.save(5, b"five");
        sink.save(10, b"ten-again");
        assert_eq!(sink.epochs(), vec![5, 10]);
        assert_eq!(sink.load(10).unwrap(), b"ten-again");
        assert_eq!(sink.load(5).unwrap(), b"five");
        assert!(sink.load(7).is_none());
        sink.remove(5);
        assert_eq!(sink.epochs(), vec![10]);
    }

    #[test]
    fn dir_sink_round_trips_and_filters_foreign_files() {
        let dir = std::env::temp_dir().join(format!("aibench-ckpt-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut sink = DirSink::new(&dir, "DC-AI-C1").unwrap();
        sink.save(3, b"abc");
        sink.save(12, b"def");
        // Foreign files in the same directory must be ignored.
        fs::write(dir.join("notes.txt"), b"x").unwrap();
        fs::write(dir.join("DC-AI-C2-e000001.aickpt"), b"other-run").unwrap();
        assert_eq!(sink.epochs(), vec![3, 12]);
        assert_eq!(sink.load(3).unwrap(), b"abc");
        assert_eq!(sink.load(12).unwrap(), b"def");
        sink.remove(3);
        assert_eq!(sink.epochs(), vec![12]);
        let _ = fs::remove_dir_all(&dir);
    }
}

//! Where snapshot bytes live between the save and the (possibly much later)
//! resume.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::error::CkptError;

/// A store for epoch-indexed snapshots.
///
/// The resumable runner saves through this trait and, on restart, walks
/// [`CheckpointSink::epochs`] from newest to oldest looking for the latest
/// snapshot that still validates. Implementations keep whole byte blobs;
/// integrity is the format's job, not the sink's — but *availability* is
/// the sink's job, so storage failures surface as [`CkptError::Io`] instead
/// of being swallowed. What a failed save or load means (retry, fall back
/// to an older snapshot, give up) is the caller's policy decision.
pub trait CheckpointSink {
    /// Stores the snapshot taken at the end of `epoch`, replacing any
    /// previous bytes for that epoch. A returned error means the bytes are
    /// *not* durably stored (any previous snapshot for that epoch is left
    /// untouched where the backend permits).
    fn save(&mut self, epoch: usize, bytes: &[u8]) -> Result<(), CkptError>;

    /// Epochs with a stored snapshot, ascending.
    fn epochs(&self) -> Vec<usize>;

    /// Loads the snapshot for `epoch`. `Ok(None)` means no snapshot is
    /// stored for that epoch; `Err` means one may exist but could not be
    /// read back.
    fn load(&self, epoch: usize) -> Result<Option<Vec<u8>>, CkptError>;

    /// Drops the snapshot for `epoch`, if present (best effort).
    fn remove(&mut self, epoch: usize);
}

/// A mutable borrow of a sink is itself a sink, so drivers can be written
/// generically over sink *ownership*: a one-shot runner borrows the
/// caller's sink, a long-lived served session owns its own.
impl<T: CheckpointSink + ?Sized> CheckpointSink for &mut T {
    fn save(&mut self, epoch: usize, bytes: &[u8]) -> Result<(), CkptError> {
        (**self).save(epoch, bytes)
    }

    fn epochs(&self) -> Vec<usize> {
        (**self).epochs()
    }

    fn load(&self, epoch: usize) -> Result<Option<Vec<u8>>, CkptError> {
        (**self).load(epoch)
    }

    fn remove(&mut self, epoch: usize) {
        (**self).remove(epoch);
    }
}

/// A boxed sink is itself a sink, so a server can pick each session's
/// storage backend at runtime (in-memory, on-disk, chaos-wrapped) behind
/// one `Box<dyn CheckpointSink>` without re-monomorphizing the session.
impl<T: CheckpointSink + ?Sized> CheckpointSink for Box<T> {
    fn save(&mut self, epoch: usize, bytes: &[u8]) -> Result<(), CkptError> {
        (**self).save(epoch, bytes)
    }

    fn epochs(&self) -> Vec<usize> {
        (**self).epochs()
    }

    fn load(&self, epoch: usize) -> Result<Option<Vec<u8>>, CkptError> {
        (**self).load(epoch)
    }

    fn remove(&mut self, epoch: usize) {
        (**self).remove(epoch);
    }
}

/// An in-memory sink for tests and fault-injection harnesses.
///
/// Doubles as the corruption bench: tests can grab the stored bytes with
/// [`MemorySink::bytes_mut`] and flip bits in place.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    snapshots: BTreeMap<usize, Vec<u8>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Mutable access to the stored bytes for `epoch` (for corruption
    /// tests).
    pub fn bytes_mut(&mut self, epoch: usize) -> Option<&mut Vec<u8>> {
        self.snapshots.get_mut(&epoch)
    }
}

impl CheckpointSink for MemorySink {
    fn save(&mut self, epoch: usize, bytes: &[u8]) -> Result<(), CkptError> {
        self.snapshots.insert(epoch, bytes.to_vec());
        Ok(())
    }

    fn epochs(&self) -> Vec<usize> {
        self.snapshots.keys().copied().collect()
    }

    fn load(&self, epoch: usize) -> Result<Option<Vec<u8>>, CkptError> {
        Ok(self.snapshots.get(&epoch).cloned())
    }

    fn remove(&mut self, epoch: usize) {
        self.snapshots.remove(&epoch);
    }
}

/// A sink writing one `{prefix}-e{epoch:06}.aickpt` file per epoch under a
/// directory — the store real interrupted runs resume from.
///
/// Saves go through a `.tmp` sibling and a rename, so a crash mid-write
/// leaves either the old complete file or a `.tmp` the sink ignores, never
/// a half-written snapshot under the final name. (Even without the rename
/// the format would catch the truncation — this just keeps the newest
/// *valid* snapshot newer.) Every step of that path — create, write, sync,
/// rename — reports failure as [`CkptError::Io`] so the caller knows the
/// checkpoint does not exist, rather than discovering a silent gap at
/// resume time.
#[derive(Debug, Clone)]
pub struct DirSink {
    dir: PathBuf,
    prefix: String,
}

impl DirSink {
    /// A sink over `dir` (created if absent) with the given filename
    /// prefix, typically the benchmark code.
    pub fn new(dir: impl Into<PathBuf>, prefix: impl Into<String>) -> std::io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(DirSink {
            dir,
            prefix: prefix.into(),
        })
    }

    /// A sink over `dir` namespaced to one *served session*: files are
    /// named `{prefix}-s{session_id:06}-e{epoch:06}.aickpt`.
    ///
    /// Two tenants checkpointing the same benchmark code into the same
    /// directory would otherwise clobber each other's snapshots (same
    /// prefix, same epochs). The session infix keeps the stores disjoint
    /// in both directions: this sink never lists a plain `{prefix}` file,
    /// and a plain [`DirSink::new`] sink never lists a session file —
    /// `-s000001-e000003` does not parse as an epoch suffix.
    pub fn for_session(
        dir: impl Into<PathBuf>,
        prefix: impl Into<String>,
        session_id: u64,
    ) -> std::io::Result<Self> {
        DirSink::new(dir, format!("{}-s{session_id:06}", prefix.into()))
    }

    /// The file path used for `epoch`.
    pub fn path_for(&self, epoch: usize) -> PathBuf {
        self.dir.join(format!("{}-e{epoch:06}.aickpt", self.prefix))
    }

    fn epoch_of(&self, file_name: &str) -> Option<usize> {
        let rest = file_name.strip_prefix(&self.prefix)?.strip_prefix("-e")?;
        rest.strip_suffix(".aickpt")?.parse().ok()
    }

    fn io_err(op: &str, path: &Path, e: std::io::Error) -> CkptError {
        CkptError::Io {
            op: format!("{op} {}", path.display()),
            what: e.to_string(),
        }
    }
}

impl CheckpointSink for DirSink {
    fn save(&mut self, epoch: usize, bytes: &[u8]) -> Result<(), CkptError> {
        // The directory may not exist yet (fresh path, or removed since the
        // sink was built); (re)create it so the first save of a run never
        // depends on who created the sink.
        fs::create_dir_all(&self.dir).map_err(|e| Self::io_err("save", &self.dir, e))?;
        let path = self.path_for(epoch);
        let tmp = path.with_extension("aickpt.tmp");
        let write = fs::File::create(&tmp)
            .and_then(|mut f| f.write_all(bytes).and(f.sync_all()))
            .map_err(|e| Self::io_err("save", &tmp, e));
        if let Err(e) = write {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        fs::rename(&tmp, &path).map_err(|e| {
            let _ = fs::remove_file(&tmp);
            Self::io_err("save", &path, e)
        })
    }

    fn epochs(&self) -> Vec<usize> {
        let mut out: Vec<usize> = match fs::read_dir(&self.dir) {
            Ok(entries) => entries
                .filter_map(|e| e.ok())
                .filter_map(|e| self.epoch_of(&e.file_name().to_string_lossy()))
                .collect(),
            Err(_) => Vec::new(),
        };
        out.sort_unstable();
        out.dedup();
        out
    }

    fn load(&self, epoch: usize) -> Result<Option<Vec<u8>>, CkptError> {
        let path = self.path_for(epoch);
        match fs::read(&path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(Self::io_err("load", &path, e)),
        }
    }

    fn remove(&mut self, epoch: usize) {
        let _ = fs::remove_file(self.path_for(epoch));
    }
}

/// A wrapper sink that fails on schedule — the I/O-fault test double.
///
/// Failures are keyed by epoch and operation: a scheduled save fails
/// *before* touching the inner sink (the snapshot is lost, as a full disk
/// would lose it), and a scheduled load fails even though the inner sink
/// still lists the epoch (as an unreadable sector would). Each scheduled
/// failure fires every time until the test itself disarms it with
/// [`FailingSink::clear`]; the supervised runner treats both shapes as
/// [`CkptError::Io`] faults.
#[derive(Debug, Clone, Default)]
pub struct FailingSink<S> {
    inner: S,
    fail_saves: BTreeSet<usize>,
    fail_loads: BTreeSet<usize>,
    /// Count of injected save failures actually hit.
    pub saves_failed: usize,
    /// Count of injected load failures actually hit.
    pub loads_failed: usize,
}

impl<S: CheckpointSink> FailingSink<S> {
    /// Wraps `inner` with an empty failure schedule.
    pub fn new(inner: S) -> Self {
        FailingSink {
            inner,
            fail_saves: BTreeSet::new(),
            fail_loads: BTreeSet::new(),
            saves_failed: 0,
            loads_failed: 0,
        }
    }

    /// Schedules every save for `epoch` to fail.
    pub fn fail_save_at(mut self, epoch: usize) -> Self {
        self.fail_saves.insert(epoch);
        self
    }

    /// Schedules every load for `epoch` to fail.
    pub fn fail_load_at(mut self, epoch: usize) -> Self {
        self.fail_loads.insert(epoch);
        self
    }

    /// Clears the failure schedule (the wrapped sink becomes transparent).
    pub fn clear(&mut self) {
        self.fail_saves.clear();
        self.fail_loads.clear();
    }

    /// The wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Mutable access to the wrapped sink (e.g. for corruption tests).
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }
}

impl<S: CheckpointSink> CheckpointSink for FailingSink<S> {
    fn save(&mut self, epoch: usize, bytes: &[u8]) -> Result<(), CkptError> {
        if self.fail_saves.contains(&epoch) {
            self.saves_failed += 1;
            return Err(CkptError::Io {
                op: format!("save epoch {epoch}"),
                what: "injected save failure (FailingSink)".to_string(),
            });
        }
        self.inner.save(epoch, bytes)
    }

    fn epochs(&self) -> Vec<usize> {
        self.inner.epochs()
    }

    fn load(&self, epoch: usize) -> Result<Option<Vec<u8>>, CkptError> {
        if self.fail_loads.contains(&epoch) {
            return Err(CkptError::Io {
                op: format!("load epoch {epoch}"),
                what: "injected load failure (FailingSink)".to_string(),
            });
        }
        self.inner.load(epoch)
    }

    fn remove(&mut self, epoch: usize) {
        self.inner.remove(epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_round_trips_and_orders_epochs() {
        let mut sink = MemorySink::new();
        sink.save(10, b"ten").unwrap();
        sink.save(5, b"five").unwrap();
        sink.save(10, b"ten-again").unwrap();
        assert_eq!(sink.epochs(), vec![5, 10]);
        assert_eq!(sink.load(10).unwrap().unwrap(), b"ten-again");
        assert_eq!(sink.load(5).unwrap().unwrap(), b"five");
        assert!(sink.load(7).unwrap().is_none());
        sink.remove(5);
        assert_eq!(sink.epochs(), vec![10]);
    }

    #[test]
    fn dir_sink_round_trips_and_filters_foreign_files() {
        let dir = std::env::temp_dir().join(format!("aibench-ckpt-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut sink = DirSink::new(&dir, "DC-AI-C1").unwrap();
        sink.save(3, b"abc").unwrap();
        sink.save(12, b"def").unwrap();
        // Foreign files in the same directory must be ignored.
        fs::write(dir.join("notes.txt"), b"x").unwrap();
        fs::write(dir.join("DC-AI-C2-e000001.aickpt"), b"other-run").unwrap();
        assert_eq!(sink.epochs(), vec![3, 12]);
        assert_eq!(sink.load(3).unwrap().unwrap(), b"abc");
        assert_eq!(sink.load(12).unwrap().unwrap(), b"def");
        sink.remove(3);
        assert_eq!(sink.epochs(), vec![12]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn session_sinks_with_the_same_code_never_clobber_each_other() {
        // Regression for the multi-tenant collision: two sessions
        // checkpointing the same benchmark code into the same directory
        // used to race for the same `{code}-e{epoch}` paths.
        let dir = std::env::temp_dir().join(format!("aibench-ckpt-sess-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut a = DirSink::for_session(&dir, "DC-AI-C1", 1).unwrap();
        let mut b = DirSink::for_session(&dir, "DC-AI-C1", 2).unwrap();
        a.save(3, b"tenant-a").unwrap();
        b.save(3, b"tenant-b").unwrap();
        assert_eq!(a.load(3).unwrap().unwrap(), b"tenant-a");
        assert_eq!(b.load(3).unwrap().unwrap(), b"tenant-b");
        assert_eq!(a.epochs(), vec![3]);
        assert_eq!(b.epochs(), vec![3]);
        // A plain sink for the same code sees neither session's files, and
        // the sessions see neither the plain sink's nor each other's.
        let mut plain = DirSink::new(&dir, "DC-AI-C1").unwrap();
        assert!(plain.epochs().is_empty());
        plain.save(3, b"plain").unwrap();
        assert_eq!(a.load(3).unwrap().unwrap(), b"tenant-a");
        assert_eq!(plain.load(3).unwrap().unwrap(), b"plain");
        a.remove(3);
        assert_eq!(b.epochs(), vec![3]);
        assert_eq!(plain.epochs(), vec![3]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn borrowed_sink_is_a_sink() {
        let mut inner = MemorySink::new();
        {
            let mut borrowed: &mut MemorySink = &mut inner;
            CheckpointSink::save(&mut borrowed, 1, b"one").unwrap();
            assert_eq!(CheckpointSink::epochs(&borrowed), vec![1]);
            assert_eq!(CheckpointSink::load(&borrowed, 1).unwrap().unwrap(), b"one");
            CheckpointSink::remove(&mut borrowed, 1);
        }
        assert!(inner.epochs().is_empty());
    }

    #[test]
    fn boxed_sink_is_a_sink() {
        let mut boxed: Box<dyn CheckpointSink> = Box::new(MemorySink::new());
        boxed.save(2, b"two").unwrap();
        assert_eq!(boxed.epochs(), vec![2]);
        assert_eq!(boxed.load(2).unwrap().unwrap(), b"two");
        boxed.remove(2);
        assert!(boxed.epochs().is_empty());
    }

    #[test]
    fn dir_sink_surfaces_save_errors() {
        // Saving into a "directory" whose path is occupied by a regular
        // file must report Io, not silently drop the snapshot.
        let dir = std::env::temp_dir().join(format!("aibench-ckpt-blocked-{}", std::process::id()));
        let mut sink = DirSink::new(&dir, "X").unwrap();
        fs::remove_dir_all(&dir).unwrap();
        fs::write(&dir, b"not a directory").unwrap();
        match sink.save(1, b"bytes") {
            Err(CkptError::Io { op, .. }) => assert!(op.starts_with("save")),
            other => panic!("expected Io error, got {other:?}"),
        }
        let _ = fs::remove_file(&dir);
    }

    #[test]
    fn dir_sink_recreates_a_removed_directory_on_save() {
        // Regression: the first save of a run must succeed even when the
        // sink's directory vanished after construction (or the sink was
        // deserialized pointing at a fresh path) — save (re)creates it.
        let dir = std::env::temp_dir().join(format!("aibench-ckpt-fresh-{}", std::process::id()));
        let mut sink = DirSink::new(&dir, "X").unwrap();
        fs::remove_dir_all(&dir).unwrap();
        sink.save(1, b"bytes").unwrap();
        assert_eq!(sink.epochs(), vec![1]);
        assert_eq!(sink.load(1).unwrap().unwrap(), b"bytes");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failing_sink_fails_on_schedule_and_counts() {
        let mut sink = FailingSink::new(MemorySink::new())
            .fail_save_at(2)
            .fail_load_at(3);
        sink.save(1, b"one").unwrap();
        assert!(matches!(sink.save(2, b"two"), Err(CkptError::Io { .. })));
        sink.save(3, b"three").unwrap();
        assert_eq!(sink.saves_failed, 1);
        // Epoch 2 never reached the inner sink.
        assert_eq!(sink.epochs(), vec![1, 3]);
        assert!(matches!(sink.load(3), Err(CkptError::Io { .. })));
        assert_eq!(sink.load(1).unwrap().unwrap(), b"one");
        sink.clear();
        assert_eq!(sink.load(3).unwrap().unwrap(), b"three");
    }
}

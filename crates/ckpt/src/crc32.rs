//! CRC32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the per-section
//! integrity check of the snapshot format.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The CRC32 checksum of `bytes` (IEEE, as used by zip/png/ethernet).
///
/// # Example
///
/// ```
/// assert_eq!(aibench_ckpt::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    !bytes.iter().fold(!0u32, |c, &b| {
        TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The standard check value plus a couple of fixed points.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"aibench"), crc32(b"aibench"));
    }

    #[test]
    fn sensitive_to_any_byte() {
        let base = crc32(b"hello world");
        assert_ne!(base, crc32(b"hello worle"));
        assert_ne!(base, crc32(b"iello world"));
        assert_ne!(base, crc32(b"hello worl"));
    }
}

//! The versioned, checksummed binary snapshot container.
//!
//! ```text
//! File    := Header Section*
//! Header  := MAGIC(8) VERSION(u32) COUNT(u32) HCRC(u32)
//!            // HCRC = crc32 of the VERSION and COUNT bytes
//! Section := NLEN(u32) NAME(NLEN) PLEN(u64) PAYLOAD(PLEN) CRC(u32)
//!            // CRC = crc32 of NAME + PAYLOAD
//! Payload := ECOUNT(u32) Entry*
//! Entry   := KLEN(u32) KEY(KLEN) TAG(u8) VALUE
//! ```
//!
//! All integers are little-endian; floats are stored as their raw bit
//! patterns (`to_bits`), so round-trips are bit-exact. Every byte of the
//! file is covered by the magic comparison, the header CRC, a section CRC,
//! or the structural length checks — flipping any single byte is detected
//! (property-tested in `tests/properties.rs`).

use crate::crc32::crc32;
use crate::state::{State, Value};
use crate::CkptError;

/// The eight magic bytes every snapshot starts with.
pub const MAGIC: [u8; 8] = *b"AIBCKPT\0";

/// The format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

const TAG_U64: u8 = 1;
const TAG_F32: u8 = 2;
const TAG_F64: u8 = 3;
const TAG_BOOL: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_F32S: u8 = 6;
const TAG_U64S: u8 = 7;
const TAG_F64S: u8 = 8;

/// An in-memory snapshot: named sections in a fixed order, each holding one
/// [`State`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SnapshotFile {
    sections: Vec<(String, State)>,
}

impl SnapshotFile {
    /// An empty snapshot.
    pub fn new() -> Self {
        SnapshotFile::default()
    }

    /// Appends a section.
    ///
    /// # Panics
    ///
    /// Panics if a section with this name already exists.
    pub fn push(&mut self, name: impl Into<String>, state: State) {
        let name = name.into();
        assert!(
            !self.sections.iter().any(|(n, _)| *n == name),
            "duplicate snapshot section `{name}`"
        );
        self.sections.push((name, state));
    }

    /// Looks up a section by name.
    pub fn section(&self, name: &str) -> Result<&State, CkptError> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
            .ok_or_else(|| CkptError::MissingSection {
                section: name.to_string(),
            })
    }

    /// Iterates sections in file order.
    pub fn sections(&self) -> impl Iterator<Item = (&str, &State)> {
        self.sections.iter().map(|(n, s)| (n.as_str(), s))
    }

    /// Serializes to bytes at [`FORMAT_VERSION`].
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_bytes_with_version(FORMAT_VERSION)
    }

    /// Serializes to bytes claiming an arbitrary format version.
    ///
    /// The header checksum is computed over the claimed version, so the
    /// result is well-formed at that version. Exists for the seeded-defect
    /// fixtures and version-negotiation tests; real snapshots use
    /// [`SnapshotFile::to_bytes`].
    pub fn to_bytes_with_version(&self, version: u32) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        let header_start = out.len();
        out.extend_from_slice(&version.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        let hcrc = crc32(&out[header_start..]);
        out.extend_from_slice(&hcrc.to_le_bytes());
        for (name, state) in &self.sections {
            let payload = encode_state(state);
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&payload);
            let mut crc_input = Vec::with_capacity(name.len() + payload.len());
            crc_input.extend_from_slice(name.as_bytes());
            crc_input.extend_from_slice(&payload);
            out.extend_from_slice(&crc32(&crc_input).to_le_bytes());
        }
        out
    }

    /// Strictly decodes a snapshot, failing on the first defect (bad magic,
    /// wrong version, checksum mismatch, truncation, duplicate sections, or
    /// orphan trailing bytes).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CkptError> {
        let mut r = Reader::new(bytes);
        let (version, count) = read_header(&mut r)?;
        if version != FORMAT_VERSION {
            return Err(CkptError::VersionMismatch { found: version });
        }
        let mut file = SnapshotFile::new();
        for _ in 0..count {
            let (name, state) = read_section(&mut r)?;
            if file.sections.iter().any(|(n, _)| *n == name) {
                return Err(CkptError::DuplicateSection { section: name });
            }
            file.sections.push((name, state));
        }
        if r.remaining() > 0 {
            return Err(CkptError::OrphanBytes {
                offset: r.offset,
                len: r.remaining(),
            });
        }
        Ok(file)
    }
}

/// Lints a byte stream, collecting *every* detectable defect rather than
/// stopping at the first — the engine behind `aibench-check --ckpt`.
///
/// An empty result means the stream is a well-formed snapshot at the
/// current format version.
pub fn validate(bytes: &[u8]) -> Vec<CkptError> {
    let mut issues = Vec::new();
    let mut r = Reader::new(bytes);
    let (version, count) = match read_header(&mut r) {
        Ok(h) => h,
        Err(e) => {
            // Without a readable header the section framing is unknowable.
            issues.push(e);
            return issues;
        }
    };
    if version != FORMAT_VERSION {
        issues.push(CkptError::VersionMismatch { found: version });
    }
    let mut names: Vec<String> = Vec::new();
    for _ in 0..count {
        match read_section(&mut r) {
            Ok((name, _)) => {
                if names.contains(&name) {
                    issues.push(CkptError::DuplicateSection { section: name });
                } else {
                    names.push(name);
                }
            }
            Err(e @ CkptError::Truncated { .. }) => {
                // Framing is gone; nothing after this is attributable.
                issues.push(e);
                return issues;
            }
            Err(e) => {
                issues.push(e);
                // CRC/decoding failures leave the framing intact, so keep
                // walking the remaining sections.
            }
        }
    }
    if r.remaining() > 0 {
        issues.push(CkptError::OrphanBytes {
            offset: r.offset,
            len: r.remaining(),
        });
    }
    issues
}

fn read_header(r: &mut Reader<'_>) -> Result<(u32, u32), CkptError> {
    let magic = r.take(8)?;
    if magic != MAGIC {
        return Err(CkptError::BadMagic);
    }
    let header_body = r.peek(8)?.to_vec();
    let version = r.u32()?;
    let count = r.u32()?;
    let hcrc = r.u32()?;
    if crc32(&header_body) != hcrc {
        return Err(CkptError::HeaderChecksum);
    }
    Ok((version, count))
}

fn read_section(r: &mut Reader<'_>) -> Result<(String, State), CkptError> {
    let section_offset = r.offset;
    let nlen = r.u32()? as usize;
    let name_bytes = r.take(nlen)?.to_vec();
    let plen = r.u64()? as usize;
    let payload_offset = r.offset;
    let payload = r.take(plen)?.to_vec();
    let crc = r.u32()?;
    let name = String::from_utf8(name_bytes.clone()).map_err(|_| CkptError::Malformed {
        offset: section_offset,
        what: "section name is not UTF-8".to_string(),
    })?;
    let mut crc_input = name_bytes;
    crc_input.extend_from_slice(&payload);
    if crc32(&crc_input) != crc {
        return Err(CkptError::SectionChecksum { section: name });
    }
    let state = decode_state(&payload, payload_offset)?;
    Ok((name, state))
}

fn encode_state(state: &State) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(state.len() as u32).to_le_bytes());
    for (key, value) in state.iter() {
        out.extend_from_slice(&(key.len() as u32).to_le_bytes());
        out.extend_from_slice(key.as_bytes());
        match value {
            Value::U64(v) => {
                out.push(TAG_U64);
                out.extend_from_slice(&v.to_le_bytes());
            }
            Value::F32(v) => {
                out.push(TAG_F32);
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            Value::F64(v) => {
                out.push(TAG_F64);
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            Value::Bool(v) => {
                out.push(TAG_BOOL);
                out.push(u8::from(*v));
            }
            Value::Str(v) => {
                out.push(TAG_STR);
                out.extend_from_slice(&(v.len() as u32).to_le_bytes());
                out.extend_from_slice(v.as_bytes());
            }
            Value::F32s { shape, data } => {
                out.push(TAG_F32S);
                out.extend_from_slice(&(shape.len() as u32).to_le_bytes());
                for &d in shape {
                    out.extend_from_slice(&(d as u64).to_le_bytes());
                }
                for v in data {
                    out.extend_from_slice(&v.to_bits().to_le_bytes());
                }
            }
            Value::U64s(v) => {
                out.push(TAG_U64S);
                out.extend_from_slice(&(v.len() as u64).to_le_bytes());
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            Value::F64s(v) => {
                out.push(TAG_F64S);
                out.extend_from_slice(&(v.len() as u64).to_le_bytes());
                for x in v {
                    out.extend_from_slice(&x.to_bits().to_le_bytes());
                }
            }
        }
    }
    out
}

fn decode_state(payload: &[u8], base_offset: usize) -> Result<State, CkptError> {
    let mut r = Reader::with_base(payload, base_offset);
    let count = r.u32()?;
    let mut state = State::new();
    for _ in 0..count {
        let entry_offset = r.offset;
        let klen = r.u32()? as usize;
        let key = String::from_utf8(r.take(klen)?.to_vec()).map_err(|_| CkptError::Malformed {
            offset: entry_offset,
            what: "entry key is not UTF-8".to_string(),
        })?;
        if state.get(&key).is_ok() {
            return Err(CkptError::Malformed {
                offset: entry_offset,
                what: format!("duplicate key `{key}`"),
            });
        }
        let tag = r.take(1)?[0];
        let value = match tag {
            TAG_U64 => Value::U64(r.u64()?),
            TAG_F32 => Value::F32(f32::from_bits(r.u32()?)),
            TAG_F64 => Value::F64(f64::from_bits(r.u64()?)),
            TAG_BOOL => Value::Bool(r.take(1)?[0] != 0),
            TAG_STR => {
                let len = r.u32()? as usize;
                let s =
                    String::from_utf8(r.take(len)?.to_vec()).map_err(|_| CkptError::Malformed {
                        offset: entry_offset,
                        what: format!("string value of `{key}` is not UTF-8"),
                    })?;
                Value::Str(s)
            }
            TAG_F32S => {
                let rank = r.u32()? as usize;
                let mut shape = Vec::with_capacity(rank.min(64));
                let mut elems: usize = 1;
                for _ in 0..rank {
                    let d = r.u64()? as usize;
                    elems = elems.checked_mul(d).ok_or_else(|| CkptError::Malformed {
                        offset: entry_offset,
                        what: format!("tensor `{key}` shape overflows"),
                    })?;
                    shape.push(d);
                }
                let mut data = Vec::with_capacity(elems.min(r.remaining() / 4 + 1));
                for _ in 0..elems {
                    data.push(f32::from_bits(r.u32()?));
                }
                Value::F32s { shape, data }
            }
            TAG_U64S => {
                let len = r.u64()? as usize;
                let mut v = Vec::with_capacity(len.min(r.remaining() / 8 + 1));
                for _ in 0..len {
                    v.push(r.u64()?);
                }
                Value::U64s(v)
            }
            TAG_F64S => {
                let len = r.u64()? as usize;
                let mut v = Vec::with_capacity(len.min(r.remaining() / 8 + 1));
                for _ in 0..len {
                    v.push(f64::from_bits(r.u64()?));
                }
                Value::F64s(v)
            }
            other => {
                return Err(CkptError::Malformed {
                    offset: entry_offset,
                    what: format!("unknown value tag {other} for key `{key}`"),
                })
            }
        };
        state.put(key, value);
    }
    if r.remaining() > 0 {
        return Err(CkptError::Malformed {
            offset: r.offset,
            what: format!("{} stray byte(s) after the last entry", r.remaining()),
        });
    }
    Ok(state)
}

/// A bounds-checked little-endian byte reader with offset tracking.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    base: usize,
    offset: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader::with_base(bytes, 0)
    }

    fn with_base(bytes: &'a [u8], base: usize) -> Self {
        Reader {
            bytes,
            pos: 0,
            base,
            offset: base,
        }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn peek(&self, n: usize) -> Result<&'a [u8], CkptError> {
        if self.remaining() < n {
            return Err(CkptError::Truncated {
                offset: self.offset,
                needed: n - self.remaining(),
            });
        }
        Ok(&self.bytes[self.pos..self.pos + n])
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        let out = self.peek(n)?;
        self.pos += n;
        self.offset = self.base + self.pos;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, CkptError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CkptError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_file() -> SnapshotFile {
        let mut meta = State::new();
        meta.put_str("code", "DC-AI-C15");
        meta.put_u64("seed", 7);
        let mut trainer = State::new();
        trainer.put_f32s("w", &[2, 3], vec![1.0, -2.5, 0.0, f32::NAN, 4.0, 5.5]);
        trainer.put_f64s("q", vec![0.25, f64::NAN]);
        trainer.put_bool("flag", true);
        trainer.put_u64s("epochs", vec![1, 2, 3]);
        let mut file = SnapshotFile::new();
        file.push("meta", meta);
        file.push("trainer", trainer);
        file
    }

    #[test]
    fn round_trip_is_exact() {
        let file = sample_file();
        let bytes = file.to_bytes();
        let back = SnapshotFile::from_bytes(&bytes).unwrap();
        assert_eq!(file, back);
        // Re-encoding is byte-stable.
        assert_eq!(bytes, back.to_bytes());
    }

    #[test]
    fn validate_is_clean_on_well_formed_bytes() {
        assert!(validate(&sample_file().to_bytes()).is_empty());
    }

    #[test]
    fn bad_magic_is_detected() {
        let mut bytes = sample_file().to_bytes();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            SnapshotFile::from_bytes(&bytes),
            Err(CkptError::BadMagic)
        ));
        assert_eq!(validate(&bytes), vec![CkptError::BadMagic]);
    }

    #[test]
    fn version_mismatch_is_detected() {
        let bytes = sample_file().to_bytes_with_version(99);
        assert!(matches!(
            SnapshotFile::from_bytes(&bytes),
            Err(CkptError::VersionMismatch { found: 99 })
        ));
        assert!(validate(&bytes).contains(&CkptError::VersionMismatch { found: 99 }));
    }

    #[test]
    fn payload_bit_flip_fails_the_section_crc() {
        let bytes = sample_file().to_bytes();
        // Flip one byte in the middle of the trainer section payload.
        let mut corrupt = bytes.clone();
        let idx = bytes.len() - 24;
        corrupt[idx] ^= 0x01;
        assert!(matches!(
            SnapshotFile::from_bytes(&corrupt),
            Err(CkptError::SectionChecksum { .. })
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample_file().to_bytes();
        for cut in [bytes.len() - 1, bytes.len() / 2, 10, 4] {
            let issues = validate(&bytes[..cut]);
            assert!(!issues.is_empty(), "truncation at {cut} went undetected");
        }
    }

    #[test]
    fn orphan_bytes_are_detected() {
        let mut bytes = sample_file().to_bytes();
        bytes.extend_from_slice(b"stray");
        assert!(matches!(
            SnapshotFile::from_bytes(&bytes),
            Err(CkptError::OrphanBytes { len: 5, .. })
        ));
        assert!(validate(&bytes)
            .iter()
            .any(|e| matches!(e, CkptError::OrphanBytes { .. })));
    }

    #[test]
    fn validate_collects_multiple_issues() {
        // Wrong version AND a corrupted first section: both must appear.
        let file = sample_file();
        let mut bytes = file.to_bytes_with_version(2);
        // Corrupt a byte inside the first section's payload: 20-byte
        // header, then NLEN(4) + "meta"(4) + PLEN(8) puts the payload at
        // offset 36.
        bytes[40] ^= 0x10;
        let issues = validate(&bytes);
        assert!(issues.contains(&CkptError::VersionMismatch { found: 2 }));
        assert!(issues
            .iter()
            .any(|e| matches!(e, CkptError::SectionChecksum { .. })));
    }

    #[test]
    fn missing_section_lookup_errors() {
        let file = sample_file();
        assert!(matches!(
            file.section("nope"),
            Err(CkptError::MissingSection { .. })
        ));
        assert!(file.section("meta").is_ok());
    }

    #[test]
    fn empty_file_round_trips() {
        let file = SnapshotFile::new();
        let bytes = file.to_bytes();
        assert_eq!(SnapshotFile::from_bytes(&bytes).unwrap(), file);
        assert!(validate(&bytes).is_empty());
    }
}

//! Property tests for the snapshot container: arbitrary contents round-trip
//! bit-exactly, and flipping any single byte of an encoded snapshot is
//! always detected.

use aibench_ckpt::{validate, SnapshotFile, State};
use proptest::prelude::*;

/// Builds a snapshot whose contents are fully determined by the sampled
/// inputs, mixing every value type (including non-finite floats).
fn build_file(
    shape: &[usize],
    raw_f32_bits: &[u32],
    raw_f64_bits: &[u64],
    counters: &[u64],
    label: &str,
) -> SnapshotFile {
    let elems: usize = shape.iter().product();
    let data: Vec<f32> = (0..elems)
        .map(|i| f32::from_bits(raw_f32_bits[i % raw_f32_bits.len()].wrapping_add(i as u32)))
        .collect();
    let mut meta = State::new();
    meta.put_str("label", label);
    meta.put_u64s("counters", counters.to_vec());
    meta.put_bool("flag", counters.len().is_multiple_of(2));
    let mut tensors = State::new();
    tensors.put_f32s("w", shape, data);
    tensors.put_f64s(
        "trace",
        raw_f64_bits.iter().map(|&b| f64::from_bits(b)).collect(),
    );
    if let Some(&first) = raw_f32_bits.first() {
        tensors.put_f32("scalar", f32::from_bits(first));
    }
    let mut file = SnapshotFile::new();
    file.push("meta", meta);
    file.push("tensors", tensors);
    file
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Any snapshot — arbitrary shapes, arbitrary f32/f64 bit patterns
    // (NaNs, infinities, subnormals included) — decodes back to an equal
    // file, and re-encoding reproduces the exact bytes.
    #[test]
    fn round_trip_is_bit_exact(
        dims in prop::collection::vec(1usize..6, 1..4),
        f32_bits in prop::collection::vec(0u32..u32::MAX, 1..8),
        f64_bits in prop::collection::vec(0u64..u64::MAX, 0..5),
        counters in prop::collection::vec(0u64..u64::MAX, 0..6),
    ) {
        let file = build_file(&dims, &f32_bits, &f64_bits, &counters, "prop");
        let bytes = file.to_bytes();
        prop_assert!(validate(&bytes).is_empty());
        let back = SnapshotFile::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&back, &file);
        prop_assert_eq!(back.to_bytes(), bytes);
    }

    // Flipping any single bit of any byte is detected by the strict
    // decoder AND reported by the lenient validator.
    #[test]
    fn single_byte_corruption_is_always_detected(
        dims in prop::collection::vec(1usize..5, 1..3),
        f32_bits in prop::collection::vec(0u32..u32::MAX, 1..5),
        byte_frac in 0.0f64..1.0,
        bit in 0u32..8,
    ) {
        let file = build_file(&dims, &f32_bits, &[42], &[1, 2], "corrupt-me");
        let bytes = file.to_bytes();
        let idx = ((byte_frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
        let mut corrupt = bytes.clone();
        corrupt[idx] ^= 1u8 << bit;
        prop_assert!(
            SnapshotFile::from_bytes(&corrupt).is_err(),
            "flip of bit {} at byte {}/{} slipped past the strict decoder",
            bit, idx, bytes.len()
        );
        prop_assert!(
            !validate(&corrupt).is_empty(),
            "flip of bit {} at byte {}/{} slipped past the validator",
            bit, idx, bytes.len()
        );
    }

    // Truncating an encoded snapshot at any point is detected.
    #[test]
    fn any_truncation_is_detected(
        dims in prop::collection::vec(1usize..5, 1..3),
        f32_bits in prop::collection::vec(0u32..u32::MAX, 1..5),
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = build_file(&dims, &f32_bits, &[7], &[3], "truncate-me").to_bytes();
        let cut = (cut_frac * bytes.len() as f64) as usize;
        // Cutting nothing is the well-formed file; cut at least one byte.
        let cut = cut.min(bytes.len() - 1);
        prop_assert!(SnapshotFile::from_bytes(&bytes[..cut]).is_err());
        prop_assert!(!validate(&bytes[..cut]).is_empty());
    }
}

/// Exhaustive (not sampled) single-byte sweep over one representative
/// snapshot: every byte position, every bit.
#[test]
fn exhaustive_bit_flip_sweep_on_small_snapshot() {
    let file = build_file(&[2, 2], &[0x3f80_0000, 0x7fc0_0001], &[5], &[9], "sweep");
    let bytes = file.to_bytes();
    for idx in 0..bytes.len() {
        for bit in 0..8 {
            let mut corrupt = bytes.clone();
            corrupt[idx] ^= 1u8 << bit;
            assert!(
                SnapshotFile::from_bytes(&corrupt).is_err(),
                "flip of bit {bit} at byte {idx} undetected (strict)"
            );
            assert!(
                !validate(&corrupt).is_empty(),
                "flip of bit {bit} at byte {idx} undetected (validate)"
            );
        }
    }
}

//! Learnable-parameter and forward-FLOPs counting over full-scale
//! [`ModelSpec`]s — the role pytorch-OpCounter plays in the paper
//! (Section 5.2.1).
//!
//! Conventions match OpCounter: a multiply-accumulate counts as one
//! "FLOP" (OpCounter reports MACs — ResNet-50 ≈ 4.1 G);
//! convolution weights include no bias (the batch norm absorbs it); RNN
//! layers count `gates × (d_in + d_h + 1) × d_h` parameters and unroll
//! their step count into FLOPs; embedding lookups contribute parameters
//! but (to first order) no FLOPs, which is why Learning-to-Rank lands at
//! the bottom of the FLOPs range while still carrying megabytes of
//! parameters.
//!
//! # Example
//!
//! ```
//! use aibench_models::catalog::image_classification;
//! use aibench_opcount::count;
//!
//! let c = count(&image_classification());
//! // ResNet-50: ~25.6M parameters, ~4.1 G-FLOPs forward.
//! assert!((20.0e6..30.0e6).contains(&(c.params as f64)));
//! assert!((3.0e9..5.0e9).contains(&c.flops));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use aibench_models::{LayerKind, ModelSpec};

/// Parameter and FLOP totals for one model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OpCount {
    /// Learnable parameters.
    pub params: u64,
    /// FLOPs of a single forward pass for one sample.
    pub flops: f64,
}

impl OpCount {
    /// Parameters in millions (the paper's Figure 2 unit).
    pub fn params_m(&self) -> f64 {
        self.params as f64 / 1e6
    }

    /// FLOPs in M-FLOPs (the paper's Figure 2 unit).
    pub fn mflops(&self) -> f64 {
        self.flops / 1e6
    }
}

/// Counts one layer.
pub fn count_layer(kind: &LayerKind) -> OpCount {
    match *kind {
        LayerKind::Conv2d {
            c_in,
            c_out,
            k,
            h_out,
            w_out,
        }
        | LayerKind::ConvTranspose2d {
            c_in,
            c_out,
            k,
            h_out,
            w_out,
        } => OpCount {
            params: (c_in * c_out * k * k) as u64,
            flops: (k * k * c_in * c_out * h_out * w_out) as f64,
        },
        LayerKind::Linear { d_in, d_out } => OpCount {
            params: (d_in * d_out + d_out) as u64,
            flops: (d_in * d_out) as f64,
        },
        LayerKind::BatchNorm2d { c, h, w } => OpCount {
            params: 2 * c as u64,
            flops: 4.0 * (c * h * w) as f64,
        },
        LayerKind::LayerNorm { rows, d } => OpCount {
            params: 2 * d as u64,
            flops: 6.0 * (rows * d) as f64,
        },
        LayerKind::Relu { n } | LayerKind::Activation { n } => OpCount {
            params: 0,
            flops: n as f64,
        },
        LayerKind::Pool { c, h_out, w_out, k } => OpCount {
            params: 0,
            flops: (c * h_out * w_out * k * k) as f64,
        },
        LayerKind::Embedding {
            vocab,
            dim,
            lookups,
        } => OpCount {
            params: (vocab * dim) as u64,
            flops: (lookups * dim) as f64,
        },
        LayerKind::Rnn {
            kind,
            d_in,
            d_h,
            steps,
        } => {
            let g = kind.gates();
            OpCount {
                params: (g * (d_in * d_h + d_h * d_h + d_h)) as u64,
                flops: (g * (d_in + d_h) * d_h * steps) as f64,
            }
        }
        LayerKind::Attention {
            d_model,
            heads: _,
            seq_q,
            seq_k,
        } => OpCount {
            params: (4 * d_model * d_model) as u64,
            flops: (4 * seq_q * d_model * d_model) as f64 + 2.0 * (seq_q * seq_k * d_model) as f64,
        },
        LayerKind::Softmax { rows, classes } => OpCount {
            params: 0,
            flops: 5.0 * (rows * classes) as f64,
        },
        LayerKind::Elementwise { n, ops } => OpCount {
            params: 0,
            flops: (n * ops) as f64,
        },
        LayerKind::GridSample { c, h, w } => OpCount {
            params: 0,
            flops: 11.0 * (c * h * w) as f64,
        },
    }
}

/// Counts a whole model: FLOPs expand layer repeats; parameters expand
/// only for non-shared repeats.
pub fn count(spec: &ModelSpec) -> OpCount {
    let mut total = OpCount::default();
    for layer in &spec.layers {
        let c = count_layer(&layer.kind);
        let param_copies = if layer.share_params { 1 } else { layer.repeat };
        total.params += c.params * param_copies as u64;
        total.flops += c.flops * layer.repeat as f64;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use aibench_models::catalog;
    use aibench_models::RnnKind;

    #[test]
    fn linear_layer_counts() {
        let c = count_layer(&LayerKind::Linear { d_in: 10, d_out: 5 });
        assert_eq!(c.params, 55);
        assert_eq!(c.flops, 50.0);
    }

    #[test]
    fn conv_layer_counts() {
        let c = count_layer(&LayerKind::Conv2d {
            c_in: 3,
            c_out: 8,
            k: 3,
            h_out: 4,
            w_out: 4,
        });
        assert_eq!(c.params, 216);
        assert_eq!(c.flops, 216.0 * 16.0);
    }

    #[test]
    fn lstm_counts_four_gates() {
        let c = count_layer(&LayerKind::Rnn {
            kind: RnnKind::Lstm,
            d_in: 8,
            d_h: 8,
            steps: 2,
        });
        assert_eq!(c.params, 4 * (64 + 64 + 8));
        assert_eq!(c.flops, (4 * 16 * 8 * 2) as f64);
    }

    #[test]
    fn embedding_has_params_but_negligible_flops() {
        let c = count_layer(&LayerKind::Embedding {
            vocab: 1000,
            dim: 16,
            lookups: 3,
        });
        assert_eq!(c.params, 16_000);
        assert!(c.flops < 100.0);
    }

    #[test]
    fn resnet50_lands_near_published_numbers() {
        let c = count(&catalog::image_classification());
        assert!(
            (20.0e6..30.0e6).contains(&(c.params as f64)),
            "params {}",
            c.params_m()
        );
        assert!(
            (3_000.0..5_000.0).contains(&c.mflops()),
            "mflops {}",
            c.mflops()
        );
    }

    fn ranges(specs: &[ModelSpec], skip: &str) -> (f64, f64, f64, f64) {
        let cs: Vec<OpCount> = specs.iter().filter(|s| s.name != skip).map(count).collect();
        let min_f = cs.iter().map(|c| c.mflops()).fold(f64::INFINITY, f64::min);
        let max_f = cs.iter().map(|c| c.mflops()).fold(0.0, f64::max);
        let min_p = cs
            .iter()
            .map(|c| c.params_m())
            .fold(f64::INFINITY, f64::min);
        let max_p = cs.iter().map(|c| c.params_m()).fold(0.0, f64::max);
        (min_f, max_f, min_p, max_p)
    }

    #[test]
    fn aibench_ranges_cover_paper_claims() {
        // Section 5.2.1: FLOPs 0.09..157802 M, params 0.03M..68.4M over the
        // sixteen characterized benchmarks (NAS excluded).
        let (min_f, max_f, min_p, max_p) = ranges(&catalog::aibench_specs(), "ENAS");
        assert!(min_f < 1.0, "AIBench min MFLOPs {min_f} should be sub-1");
        assert!(
            max_f > 50_000.0,
            "AIBench max MFLOPs {max_f} should exceed 50 G"
        );
        assert!(min_p < 0.1, "AIBench min params {min_p}M should be tiny");
        assert!(
            max_p > 50.0,
            "AIBench max params {max_p}M should exceed 50M"
        );
    }

    #[test]
    fn mlperf_ranges_are_narrower_than_aibench() {
        let (a_min_f, a_max_f, a_min_p, a_max_p) = ranges(&catalog::aibench_specs(), "ENAS");
        let (m_min_f, m_max_f, m_min_p, m_max_p) = ranges(&catalog::mlperf_specs(), "Minigo");
        assert!(
            a_min_f <= m_min_f,
            "AIBench FLOPs floor must be lower: {a_min_f} vs {m_min_f}"
        );
        assert!(
            a_max_f >= m_max_f,
            "AIBench FLOPs ceiling must be higher: {a_max_f} vs {m_max_f}"
        );
        assert!(
            a_min_p <= m_min_p,
            "AIBench params floor must be lower: {a_min_p} vs {m_min_p}"
        );
        assert!(
            a_max_p >= m_max_p,
            "AIBench params ceiling must be higher: {a_max_p} vs {m_max_p}"
        );
    }
}

//! Dumps the counted parameters and forward FLOPs of every AIBench and
//! MLPerf full-scale model spec (the Figure 2 axes).
//!
//! ```sh
//! cargo run --release -p aibench-opcount --example dump_counts
//! ```

fn main() {
    println!("{:<28} {:>12} {:>14}", "model", "params(M)", "MFLOPs");
    for s in aibench_models::catalog::aibench_specs() {
        let c = aibench_opcount::count(&s);
        println!(
            "A {:<26} {:>12.3} {:>14.2}",
            s.name,
            c.params_m(),
            c.mflops()
        );
    }
    for s in aibench_models::catalog::mlperf_specs() {
        let c = aibench_opcount::count(&s);
        println!(
            "M {:<26} {:>12.3} {:>14.2}",
            s.name,
            c.params_m(),
            c.mflops()
        );
    }
}

//! Bitwise-identity regression tests for the microkernel rewrite.
//!
//! The determinism contract (see `ops::microkernel`): every GEMM path —
//! packed, in-place register-tiled, scalar tiled — plus the conv2d
//! algorithm variants and the lane-blocked reductions produce **bitwise
//! identical** results to their naive references, at every thread count.
//! Each kernel family is exercised in a single `#[test]` because the
//! thread count and GEMM path are process-global; sweeping inside one test
//! keeps the sweep race-free under the default parallel test runner.

use std::sync::{Mutex, MutexGuard};

use aibench_tensor::ops::{self, Conv2dArgs, GemmPath};
use aibench_tensor::{Rng, Tensor};

const THREADS: &[usize] = &[1, 4, 8];

/// Serializes the tests in this file: thread count and GEMM path are
/// process-global, and each test sweeps both.
static GLOBALS: Mutex<()> = Mutex::new(());

fn lock_globals() -> MutexGuard<'static, ()> {
    GLOBALS.lock().unwrap_or_else(|e| e.into_inner())
}

fn fill(seed: u64, len: usize) -> Vec<f32> {
    let mut rng = Rng::seed_from(seed);
    (0..len).map(|_| rng.normal()).collect()
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

/// Runs `f` at every thread count and on both GEMM paths, asserting all
/// results are bitwise identical to the first; returns that result.
fn sweep(label: &str, f: impl Fn() -> Tensor) -> Tensor {
    let base_threads = aibench_parallel::threads();
    let mut reference: Option<(Vec<u32>, Tensor)> = None;
    for &t in THREADS {
        aibench_parallel::set_threads(t);
        for path in [GemmPath::Blocked, GemmPath::Scalar] {
            ops::set_gemm_path(path);
            let got = f();
            match &reference {
                None => reference = Some((bits(&got), got)),
                Some((want, _)) => assert_eq!(
                    &bits(&got),
                    want,
                    "{label}: result differs at {t} thread(s) on {path:?}"
                ),
            }
        }
    }
    ops::set_gemm_path(GemmPath::Blocked);
    aibench_parallel::set_threads(base_threads);
    reference.expect("sweep ran").1
}

/// Odd GEMM shapes: zero-size, 1xN, Nx1, sub-microtile, non-multiples of
/// every blocking parameter (MR=4, NR=8, TILE=32, MC=64, KC=256), and
/// shapes straddling the packing threshold.
#[test]
fn gemm_all_paths_match_naive_across_threads() {
    let _g = lock_globals();
    let shapes: &[(usize, usize, usize)] = &[
        (0, 0, 0),
        (0, 5, 3),
        (3, 0, 5),
        (3, 5, 0),
        (1, 1, 1),
        (1, 300, 1),
        (1, 7, 64),
        (64, 7, 1),
        (2, 20, 20),
        (5, 7, 9),
        (16, 20, 20),
        (33, 257, 65),
        (63, 64, 65),
        (130, 70, 130),
    ];
    for &(m, k, n) in shapes {
        let a = Tensor::from_vec(fill(m as u64 * 131 + n as u64, m * k), &[m, k]);
        let b = Tensor::from_vec(fill(k as u64 * 37 + 5, k * n), &[k, n]);
        let got = sweep(&format!("gemm({m},{k},{n})"), || a.matmul(&b));
        let want = ops::matmul_naive(&a, &b);
        assert_eq!(
            bits(&got),
            bits(&want),
            "gemm({m},{k},{n}): blocked != naive"
        );
    }
}

/// Naive direct convolution with the same per-element accumulation order
/// as the im2col GEMM: `(ci, ki, kj)` ascending, one mul + one add each.
fn conv_naive(x: &Tensor, w: &Tensor, args: Conv2dArgs) -> Tensor {
    let (n, ci, h, wd) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (co, kh, kw) = (w.shape()[0], w.shape()[2], w.shape()[3]);
    let ho = args.out_extent(h, kh);
    let wo = args.out_extent(wd, kw);
    let mut out = vec![0.0f32; n * co * ho * wo];
    for s in 0..n {
        for o in 0..co {
            for oy in 0..ho {
                for ox in 0..wo {
                    let mut acc = 0.0f32;
                    for c in 0..ci {
                        for ky in 0..kh {
                            for kx in 0..kw {
                                let iy = (oy * args.stride + ky) as isize - args.pad as isize;
                                let ix = (ox * args.stride + kx) as isize - args.pad as isize;
                                if iy < 0 || ix < 0 || iy >= h as isize || ix >= wd as isize {
                                    continue;
                                }
                                let xv =
                                    x.data()[((s * ci + c) * h + iy as usize) * wd + ix as usize];
                                let wv = w.data()[((o * ci + c) * kh + ky) * kw + kx];
                                acc += wv * xv;
                            }
                        }
                    }
                    out[((s * co + o) * ho + oy) * wo + ox] = acc;
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, co, ho, wo])
}

/// `(n, ci, h, w, co, kh, kw, stride, pad)` of one conv test case.
type ConvCase = (
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
);

/// Conv shapes covering all three `ConvAlgo` variants (direct-loops tiny,
/// 1x1 direct-GEMM, im2col), strides, padding, and odd extents.
#[test]
fn conv2d_matches_naive_across_threads_and_algos() {
    let _g = lock_globals();
    let cases: &[ConvCase] = &[
        // (n, ci, h, w, co, kh, kw, stride, pad)
        (1, 1, 3, 3, 1, 3, 3, 1, 0),    // tiny: DirectLoops
        (2, 2, 5, 4, 3, 3, 3, 1, 1),    // odd extents, padded
        (2, 3, 8, 8, 4, 1, 1, 1, 0),    // 1x1: DirectGemm
        (3, 4, 9, 9, 8, 3, 3, 2, 1),    // strided
        (2, 8, 12, 12, 16, 3, 3, 1, 1), // CNN-trainer-like: Im2colGemm
        (1, 2, 1, 7, 2, 1, 3, 1, 1),    // 1-row input
    ];
    for &(n, ci, h, w, co, kh, kw, stride, pad) in cases {
        let x = Tensor::from_vec(
            fill(7 + (n * ci * h) as u64, n * ci * h * w),
            &[n, ci, h, w],
        );
        let wt = Tensor::from_vec(
            fill(13 + (co * kh) as u64, co * ci * kh * kw),
            &[co, ci, kh, kw],
        );
        let args = Conv2dArgs::new(stride, pad);
        let label = format!("conv(n{n},ci{ci},{h}x{w},co{co},k{kh}x{kw},s{stride},p{pad})");
        let got = sweep(&label, || ops::conv2d(&x, &wt, args));
        let want = conv_naive(&x, &wt, args);
        assert_eq!(bits(&got), bits(&want), "{label}: conv2d != naive");
    }
}

/// Backward kernels: no independent naive oracle here, but the sweep
/// pins bitwise identity across thread counts and across the two GEMM
/// paths (two independent implementations agreeing exactly), including
/// the dedicated 1x1 direct path of `conv2d_backward_input`.
#[test]
fn conv2d_backward_kernels_are_path_and_thread_invariant() {
    let _g = lock_globals();
    let cases: &[ConvCase] = &[
        (2, 3, 8, 8, 4, 1, 1, 1, 0), // 1x1: direct backward-input path
        (2, 2, 5, 4, 3, 3, 3, 1, 1),
        (3, 4, 9, 9, 8, 3, 3, 2, 1),
        (2, 8, 12, 12, 16, 3, 3, 1, 1),
    ];
    for &(n, ci, h, w, co, kh, kw, stride, pad) in cases {
        let args = Conv2dArgs::new(stride, pad);
        let (ho, wo) = (args.out_extent(h, kh), args.out_extent(w, kw));
        let x = Tensor::from_vec(fill(23 + (ci * h) as u64, n * ci * h * w), &[n, ci, h, w]);
        let wt = Tensor::from_vec(
            fill(29 + (co * kw) as u64, co * ci * kh * kw),
            &[co, ci, kh, kw],
        );
        let g = Tensor::from_vec(
            fill(31 + (co * ho) as u64, n * co * ho * wo),
            &[n, co, ho, wo],
        );
        sweep("conv2d_backward_input", || {
            ops::conv2d_backward_input(&g, &wt, (h, w), args)
        });
        sweep("conv2d_backward_weight", || {
            ops::conv2d_backward_weight(&x, &g, (kh, kw), args)
        });
    }
}

/// Lane-blocked reductions: bitwise thread-invariance over lengths around
/// every boundary (empty, single lane, lane remainder, chunk remainder).
#[test]
fn reductions_are_bitwise_thread_invariant() {
    let _g = lock_globals();
    let base_threads = aibench_parallel::threads();
    for &len in &[0usize, 1, 7, 8, 9, 4095, 4096, 4097, 100_000] {
        let data = fill(len as u64 + 3, len);
        let t = Tensor::from_vec(data.clone(), &[len]);
        let mut sums = Vec::new();
        let mut lane_sums = Vec::new();
        for &threads in THREADS {
            aibench_parallel::set_threads(threads);
            sums.push(t.sum().to_bits());
            lane_sums.push(aibench_parallel::sum_f32(&data).to_bits());
        }
        aibench_parallel::set_threads(base_threads);
        assert!(
            sums.windows(2).all(|w| w[0] == w[1]),
            "Tensor::sum(len={len}) varies with thread count: {sums:?}"
        );
        assert!(
            lane_sums.windows(2).all(|w| w[0] == w[1]),
            "sum_f32(len={len}) varies with thread count: {lane_sums:?}"
        );
    }
}

//! Property-based tests of the tensor algebra's invariants.

use aibench_tensor::ops::{conv2d, matmul, matmul_naive, slice_axis, Conv2dArgs};
use aibench_tensor::{broadcast_shapes, ops::concat, Rng, Tensor};
use proptest::prelude::*;

fn small_dim() -> impl Strategy<Value = usize> {
    1usize..6
}

fn tensor_2d(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = Rng::seed_from(seed);
    Tensor::randn(&[rows, cols], &mut rng)
}

proptest! {
    #[test]
    fn broadcast_is_commutative_in_shape(a in prop::collection::vec(1usize..5, 1..4),
                                         b in prop::collection::vec(1usize..5, 1..4)) {
        prop_assert_eq!(broadcast_shapes(&a, &b), broadcast_shapes(&b, &a));
    }

    #[test]
    fn broadcast_with_self_is_identity(a in prop::collection::vec(1usize..6, 1..5)) {
        prop_assert_eq!(broadcast_shapes(&a, &a), Some(a));
    }

    #[test]
    fn add_commutes(r in small_dim(), c in small_dim(), s1 in 0u64..100, s2 in 0u64..100) {
        let a = tensor_2d(r, c, s1);
        let b = tensor_2d(r, c, s2);
        prop_assert!(a.add(&b).max_abs_diff(&b.add(&a)) < 1e-6);
    }

    #[test]
    fn matmul_matches_naive(m in small_dim(), k in small_dim(), n in small_dim(), s in 0u64..100) {
        let a = tensor_2d(m, k, s);
        let b = tensor_2d(k, n, s ^ 0xff);
        prop_assert!(matmul(&a, &b).max_abs_diff(&matmul_naive(&a, &b)) < 1e-4);
    }

    #[test]
    fn matmul_distributes_over_addition(m in small_dim(), k in small_dim(), n in small_dim(), s in 0u64..100) {
        let a = tensor_2d(m, k, s);
        let b = tensor_2d(k, n, s ^ 1);
        let c = tensor_2d(k, n, s ^ 2);
        let lhs = matmul(&a, &b.add(&c));
        let rhs = matmul(&a, &b).add(&matmul(&a, &c));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-4);
    }

    #[test]
    fn transpose_is_involutive(r in small_dim(), c in small_dim(), s in 0u64..100) {
        let a = tensor_2d(r, c, s);
        prop_assert_eq!(a.t().t(), a);
    }

    #[test]
    fn sum_to_preserves_total(r in small_dim(), c in small_dim(), s in 0u64..100) {
        let a = tensor_2d(r, c, s);
        let folded = a.sum_to(&[c]);
        prop_assert!((folded.sum() - a.sum()).abs() < 1e-4);
    }

    #[test]
    fn concat_then_slice_roundtrips(r in small_dim(), c1 in small_dim(), c2 in small_dim(), s in 0u64..100) {
        let a = tensor_2d(r, c1, s);
        let b = tensor_2d(r, c2, s ^ 7);
        let joined = concat(&[&a, &b], 1);
        prop_assert_eq!(slice_axis(&joined, 1, 0, c1), a);
        prop_assert_eq!(slice_axis(&joined, 1, c1, c2), b);
    }

    #[test]
    fn conv_output_shape_is_consistent(c_in in 1usize..4, c_out in 1usize..4,
                                       h in 4usize..8, w in 4usize..8, s in 0u64..50) {
        let mut rng = Rng::seed_from(s);
        let x = Tensor::randn(&[1, c_in, h, w], &mut rng);
        let wt = Tensor::randn(&[c_out, c_in, 3, 3], &mut rng);
        let args = Conv2dArgs::new(1, 1);
        let y = conv2d(&x, &wt, args);
        prop_assert_eq!(y.shape(), &[1, c_out, h, w]);
        prop_assert!(y.all_finite());
    }

    #[test]
    fn conv_is_linear_in_the_input(s in 0u64..50) {
        let mut rng = Rng::seed_from(s);
        let x1 = Tensor::randn(&[1, 2, 5, 5], &mut rng);
        let x2 = Tensor::randn(&[1, 2, 5, 5], &mut rng);
        let wt = Tensor::randn(&[3, 2, 3, 3], &mut rng);
        let args = Conv2dArgs::new(1, 0);
        let lhs = conv2d(&x1.add(&x2), &wt, args);
        let rhs = conv2d(&x1, &wt, args).add(&conv2d(&x2, &wt, args));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-4);
    }

    #[test]
    fn rng_uniform_stays_in_unit_interval(seed in 0u64..1000) {
        let mut rng = Rng::seed_from(seed);
        for _ in 0..100 {
            let x = rng.uniform();
            prop_assert!((0.0..1.0).contains(&x));
        }
    }
}

//! Structural operations: concatenation, slicing, spatial padding.

use crate::shape::row_major_strides;
use crate::Tensor;

/// Concatenates tensors along `axis`.
///
/// # Panics
///
/// Panics if `parts` is empty, ranks differ, or non-`axis` extents differ.
pub fn concat(parts: &[&Tensor], axis: usize) -> Tensor {
    assert!(!parts.is_empty(), "concat of zero tensors");
    let rank = parts[0].ndim();
    assert!(
        axis < rank,
        "concat axis {axis} out of range for rank {rank}"
    );
    let mut out_shape = parts[0].shape().to_vec();
    out_shape[axis] = 0;
    for p in parts {
        assert_eq!(p.ndim(), rank, "concat rank mismatch");
        for (d, &expected) in out_shape.iter().enumerate() {
            if d != axis {
                assert_eq!(
                    p.shape()[d],
                    expected.max(parts[0].shape()[d]),
                    "concat extent mismatch on dim {d}"
                );
            }
        }
        out_shape[axis] += p.shape()[axis];
    }
    let outer: usize = out_shape[..axis].iter().product();
    let inner: usize = out_shape[axis + 1..].iter().product();
    let mut data = Vec::with_capacity(out_shape.iter().product());
    for o in 0..outer {
        for p in parts {
            let ext = p.shape()[axis];
            let chunk = ext * inner;
            data.extend_from_slice(&p.data()[o * chunk..(o + 1) * chunk]);
        }
    }
    Tensor::from_vec(data, &out_shape)
}

/// Extracts `[start, start+len)` along `axis`.
///
/// # Panics
///
/// Panics if the range exceeds the axis extent.
pub fn slice_axis(x: &Tensor, axis: usize, start: usize, len: usize) -> Tensor {
    assert!(axis < x.ndim(), "slice axis {axis} out of range");
    assert!(
        start + len <= x.shape()[axis],
        "slice [{start}, {}) exceeds extent {}",
        start + len,
        x.shape()[axis]
    );
    let mut out_shape = x.shape().to_vec();
    out_shape[axis] = len;
    let strides = row_major_strides(x.shape());
    let outer: usize = x.shape()[..axis].iter().product();
    let inner = strides[axis];
    let src_chunk = x.shape()[axis] * inner;
    let mut data = Vec::with_capacity(out_shape.iter().product());
    for o in 0..outer {
        let base = o * src_chunk + start * inner;
        data.extend_from_slice(&x.data()[base..base + len * inner]);
    }
    Tensor::from_vec(data, &out_shape)
}

/// Zero-pads the two spatial dimensions of an NCHW tensor by `pad` on every
/// side.
///
/// # Panics
///
/// Panics if the tensor is not 4-D.
pub fn pad2d(x: &Tensor, pad: usize) -> Tensor {
    assert_eq!(x.ndim(), 4, "pad2d: input must be NCHW");
    if pad == 0 {
        return x.clone();
    }
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (hp, wp) = (h + 2 * pad, w + 2 * pad);
    let mut out = Tensor::zeros(&[n, c, hp, wp]);
    for s in 0..n {
        for ci in 0..c {
            for y in 0..h {
                let src = (s * c + ci) * h * w + y * w;
                let dst = (s * c + ci) * hp * wp + (y + pad) * wp + pad;
                out.data_mut()[dst..dst + w].copy_from_slice(&x.data()[src..src + w]);
            }
        }
    }
    out
}

/// Removes `pad` from every side of the spatial dimensions (inverse of
/// [`pad2d`]).
///
/// # Panics
///
/// Panics if the tensor is not 4-D or too small to unpad.
pub fn unpad2d(x: &Tensor, pad: usize) -> Tensor {
    assert_eq!(x.ndim(), 4, "unpad2d: input must be NCHW");
    if pad == 0 {
        return x.clone();
    }
    let (n, c, hp, wp) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    assert!(
        hp > 2 * pad && wp > 2 * pad,
        "unpad2d: nothing left after removing pad {pad}"
    );
    let (h, w) = (hp - 2 * pad, wp - 2 * pad);
    let mut out = Tensor::zeros(&[n, c, h, w]);
    for s in 0..n {
        for ci in 0..c {
            for y in 0..h {
                let src = (s * c + ci) * hp * wp + (y + pad) * wp + pad;
                let dst = (s * c + ci) * h * w + y * w;
                out.data_mut()[dst..dst + w].copy_from_slice(&x.data()[src..src + w]);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn concat_axis0() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]);
        let b = Tensor::from_vec(vec![3.0, 4.0, 5.0, 6.0], &[2, 2]);
        let c = concat(&[&a, &b], 0);
        assert_eq!(c.shape(), &[3, 2]);
        assert_eq!(c.data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn concat_axis1() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![9.0, 8.0], &[2, 1]);
        let c = concat(&[&a, &b], 1);
        assert_eq!(c.shape(), &[2, 3]);
        assert_eq!(c.data(), &[1.0, 2.0, 9.0, 3.0, 4.0, 8.0]);
    }

    #[test]
    fn slice_then_concat_roundtrip() {
        let mut rng = Rng::seed_from(8);
        let x = Tensor::randn(&[3, 4, 5], &mut rng);
        let a = slice_axis(&x, 1, 0, 2);
        let b = slice_axis(&x, 1, 2, 2);
        let back = concat(&[&a, &b], 1);
        assert_eq!(back, x);
    }

    #[test]
    fn pad_unpad_roundtrip() {
        let mut rng = Rng::seed_from(9);
        let x = Tensor::randn(&[2, 3, 4, 5], &mut rng);
        let padded = pad2d(&x, 2);
        assert_eq!(padded.shape(), &[2, 3, 8, 9]);
        assert_eq!(unpad2d(&padded, 2), x);
    }

    #[test]
    fn pad_border_is_zero() {
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let p = pad2d(&x, 1);
        assert_eq!(p.at(&[0, 0, 0, 0]), 0.0);
        assert_eq!(p.at(&[0, 0, 1, 1]), 1.0);
        assert_eq!(p.sum(), 4.0);
    }

    #[test]
    #[should_panic(expected = "exceeds extent")]
    fn slice_out_of_range_panics() {
        let x = Tensor::ones(&[2, 3]);
        let _ = slice_axis(&x, 1, 2, 2);
    }
}

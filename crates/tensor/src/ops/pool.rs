//! Max and average pooling over NCHW activations.

use crate::Tensor;

/// Max-pools `[n, c, h, w]` with a `k`×`k` window and stride `stride`.
///
/// Returns the pooled tensor plus, for each output element, the flat input
/// index that won the max — required by [`max_pool2d_backward`].
///
/// # Panics
///
/// Panics if the input is not 4-D or the window does not fit.
pub fn max_pool2d(input: &Tensor, k: usize, stride: usize) -> (Tensor, Vec<usize>) {
    assert_eq!(
        input.ndim(),
        4,
        "max_pool2d: input must be NCHW, got {:?}",
        input.shape()
    );
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    assert!(
        h >= k && w >= k,
        "max_pool2d: window {k} larger than input {h}x{w}"
    );
    let ho = (h - k) / stride + 1;
    let wo = (w - k) / stride + 1;
    let mut out = Tensor::zeros(&[n, c, ho, wo]);
    let mut winners = vec![0usize; n * c * ho * wo];
    let mut oi = 0;
    for s in 0..n {
        for ci in 0..c {
            let base = (s * c + ci) * h * w;
            for oy in 0..ho {
                for ox in 0..wo {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0;
                    for ky in 0..k {
                        for kx in 0..k {
                            let idx = base + (oy * stride + ky) * w + ox * stride + kx;
                            let v = input.data()[idx];
                            if v > best {
                                best = v;
                                best_idx = idx;
                            }
                        }
                    }
                    out.data_mut()[oi] = best;
                    winners[oi] = best_idx;
                    oi += 1;
                }
            }
        }
    }
    (out, winners)
}

/// Routes output gradients back to the winning input positions of a prior
/// [`max_pool2d`] call.
pub fn max_pool2d_backward(
    grad_output: &Tensor,
    winners: &[usize],
    input_shape: &[usize],
) -> Tensor {
    let mut gx = Tensor::zeros(input_shape);
    for (g, &idx) in grad_output.data().iter().zip(winners) {
        gx.data_mut()[idx] += g;
    }
    gx
}

/// Average-pools `[n, c, h, w]` with a `k`×`k` window and stride `stride`.
///
/// # Panics
///
/// Panics if the input is not 4-D or the window does not fit.
pub fn avg_pool2d(input: &Tensor, k: usize, stride: usize) -> Tensor {
    assert_eq!(
        input.ndim(),
        4,
        "avg_pool2d: input must be NCHW, got {:?}",
        input.shape()
    );
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    assert!(
        h >= k && w >= k,
        "avg_pool2d: window {k} larger than input {h}x{w}"
    );
    let ho = (h - k) / stride + 1;
    let wo = (w - k) / stride + 1;
    let inv = 1.0 / (k * k) as f32;
    let mut out = Tensor::zeros(&[n, c, ho, wo]);
    let mut oi = 0;
    for s in 0..n {
        for ci in 0..c {
            let base = (s * c + ci) * h * w;
            for oy in 0..ho {
                for ox in 0..wo {
                    let mut acc = 0.0;
                    for ky in 0..k {
                        for kx in 0..k {
                            acc += input.data()[base + (oy * stride + ky) * w + ox * stride + kx];
                        }
                    }
                    out.data_mut()[oi] = acc * inv;
                    oi += 1;
                }
            }
        }
    }
    out
}

/// Gradient of [`avg_pool2d`]: spreads each output gradient uniformly over
/// its window.
pub fn avg_pool2d_backward(
    grad_output: &Tensor,
    input_shape: &[usize],
    k: usize,
    stride: usize,
) -> Tensor {
    let (n, c, h, w) = (
        input_shape[0],
        input_shape[1],
        input_shape[2],
        input_shape[3],
    );
    let ho = grad_output.shape()[2];
    let wo = grad_output.shape()[3];
    let inv = 1.0 / (k * k) as f32;
    let mut gx = Tensor::zeros(input_shape);
    let mut oi = 0;
    for s in 0..n {
        for ci in 0..c {
            let base = (s * c + ci) * h * w;
            for oy in 0..ho {
                for ox in 0..wo {
                    let g = grad_output.data()[oi] * inv;
                    oi += 1;
                    for ky in 0..k {
                        for kx in 0..k {
                            gx.data_mut()[base + (oy * stride + ky) * w + ox * stride + kx] += g;
                        }
                    }
                }
            }
        }
    }
    gx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_known_values() {
        let x = Tensor::from_vec((0..16).map(|i| i as f32).collect(), &[1, 1, 4, 4]);
        let (y, _) = max_pool2d(&x, 2, 2);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn max_pool_backward_routes_to_winner() {
        let x = Tensor::from_vec((0..16).map(|i| i as f32).collect(), &[1, 1, 4, 4]);
        let (y, winners) = max_pool2d(&x, 2, 2);
        let go = Tensor::ones(y.shape());
        let gx = max_pool2d_backward(&go, &winners, x.shape());
        assert_eq!(gx.sum(), 4.0);
        assert_eq!(gx.at(&[0, 0, 1, 1]), 1.0); // element 5 won the top-left window
        assert_eq!(gx.at(&[0, 0, 0, 0]), 0.0);
    }

    #[test]
    fn avg_pool_known_values() {
        let x = Tensor::from_vec((0..16).map(|i| i as f32).collect(), &[1, 1, 4, 4]);
        let y = avg_pool2d(&x, 2, 2);
        assert_eq!(y.data(), &[2.5, 4.5, 10.5, 12.5]);
    }

    #[test]
    fn avg_pool_backward_spreads_uniformly() {
        let x = Tensor::zeros(&[1, 1, 4, 4]);
        let go = Tensor::ones(&[1, 1, 2, 2]);
        let gx = avg_pool2d_backward(&go, x.shape(), 2, 2);
        assert!(gx.data().iter().all(|&v| (v - 0.25).abs() < 1e-6));
    }

    #[test]
    fn overlapping_stride() {
        let x = Tensor::from_vec((0..9).map(|i| i as f32).collect(), &[1, 1, 3, 3]);
        let (y, _) = max_pool2d(&x, 2, 1);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[4.0, 5.0, 7.0, 8.0]);
    }
}

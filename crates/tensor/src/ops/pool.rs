//! Max and average pooling over NCHW activations.
//!
//! All four kernels parallelize over (batch × channel) planes: each plane's
//! outputs (or input gradients) are written by exactly one thread in the
//! serial loop order, so results are bitwise identical for every
//! `AIBENCH_THREADS` value.

use aibench_parallel::effects;

use crate::Tensor;

/// Max-pools `[n, c, h, w]` with a `k`×`k` window and stride `stride`.
///
/// Returns the pooled tensor plus, for each output element, the flat input
/// index that won the max — required by [`max_pool2d_backward`].
///
/// # Panics
///
/// Panics if the input is not 4-D or the window does not fit.
pub fn max_pool2d(input: &Tensor, k: usize, stride: usize) -> (Tensor, Vec<usize>) {
    assert_eq!(
        input.ndim(),
        4,
        "max_pool2d: input must be NCHW, got {:?}",
        input.shape()
    );
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    assert!(
        h >= k && w >= k,
        "max_pool2d: window {k} larger than input {h}x{w}"
    );
    let ho = (h - k) / stride + 1;
    let wo = (w - k) / stride + 1;
    let plane_out = ho * wo;
    let in_data = input.data();
    let _scope = effects::kernel_scope("max_pool2d");
    // Pass 1: the winning input index per output element, plane-parallel.
    let mut winners = vec![0usize; n * c * plane_out];
    aibench_parallel::parallel_slice_mut(&mut winners, plane_out, |range, win_plane| {
        let plane = range.start / plane_out.max(1);
        let base = plane * h * w;
        effects::read(in_data, base..base + h * w);
        let mut oi = 0;
        for oy in 0..ho {
            for ox in 0..wo {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0;
                for ky in 0..k {
                    for kx in 0..k {
                        let idx = base + (oy * stride + ky) * w + ox * stride + kx;
                        if in_data[idx] > best {
                            best = in_data[idx];
                            best_idx = idx;
                        }
                    }
                }
                win_plane[oi] = best_idx;
                oi += 1;
            }
        }
    });
    // Pass 2: gather the winning values.
    let mut out = Tensor::zeros(&[n, c, ho, wo]);
    aibench_parallel::parallel_slice_mut(
        out.data_mut(),
        aibench_parallel::ELEMWISE_CHUNK,
        |range, out_chunk| {
            effects::read(&winners, range.clone());
            for (o, &idx) in out_chunk.iter_mut().zip(&winners[range]) {
                *o = in_data[idx];
            }
        },
    );
    (out, winners)
}

/// Routes output gradients back to the winning input positions of a prior
/// [`max_pool2d`] call.
///
/// Parallelism exploits the structure [`max_pool2d`] guarantees: the
/// winner of an output element always lies in the same (batch, channel)
/// plane, so plane-sized gradient blocks are disjoint.
///
/// # Panics
///
/// Panics if a winner index falls outside its own plane (i.e. `winners`
/// was not produced by [`max_pool2d`] for `input_shape`).
pub fn max_pool2d_backward(
    grad_output: &Tensor,
    winners: &[usize],
    input_shape: &[usize],
) -> Tensor {
    let plane_in: usize = input_shape[2] * input_shape[3];
    let planes: usize = input_shape[0] * input_shape[1];
    let plane_out = grad_output.len().checked_div(planes).unwrap_or(0);
    let go = grad_output.data();
    let mut gx = Tensor::zeros(input_shape);
    let _scope = effects::kernel_scope("max_pool2d_bwd");
    aibench_parallel::parallel_slice_mut(gx.data_mut(), plane_in, |range, gx_plane| {
        let plane = range.start / plane_in.max(1);
        let base = plane * plane_in;
        effects::read(go, plane * plane_out..(plane + 1) * plane_out);
        effects::read(winners, plane * plane_out..(plane + 1) * plane_out);
        for oi in plane * plane_out..(plane + 1) * plane_out {
            // Indexing the plane slice bounds-checks the same-plane
            // guarantee documented above.
            gx_plane[winners[oi] - base] += go[oi];
        }
    });
    gx
}

/// Average-pools `[n, c, h, w]` with a `k`×`k` window and stride `stride`.
///
/// # Panics
///
/// Panics if the input is not 4-D or the window does not fit.
pub fn avg_pool2d(input: &Tensor, k: usize, stride: usize) -> Tensor {
    assert_eq!(
        input.ndim(),
        4,
        "avg_pool2d: input must be NCHW, got {:?}",
        input.shape()
    );
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    assert!(
        h >= k && w >= k,
        "avg_pool2d: window {k} larger than input {h}x{w}"
    );
    let ho = (h - k) / stride + 1;
    let wo = (w - k) / stride + 1;
    let plane_out = ho * wo;
    let inv = 1.0 / (k * k) as f32;
    let in_data = input.data();
    let mut out = Tensor::zeros(&[n, c, ho, wo]);
    let _scope = effects::kernel_scope("avg_pool2d");
    aibench_parallel::parallel_slice_mut(out.data_mut(), plane_out, |range, out_plane| {
        let plane = range.start / plane_out.max(1);
        let base = plane * h * w;
        effects::read(in_data, base..base + h * w);
        let mut oi = 0;
        for oy in 0..ho {
            for ox in 0..wo {
                let mut acc = 0.0;
                for ky in 0..k {
                    for kx in 0..k {
                        acc += in_data[base + (oy * stride + ky) * w + ox * stride + kx];
                    }
                }
                out_plane[oi] = acc * inv;
                oi += 1;
            }
        }
    });
    out
}

/// Gradient of [`avg_pool2d`]: spreads each output gradient uniformly over
/// its window, one (batch, channel) plane per thread.
pub fn avg_pool2d_backward(
    grad_output: &Tensor,
    input_shape: &[usize],
    k: usize,
    stride: usize,
) -> Tensor {
    let (h, w) = (input_shape[2], input_shape[3]);
    let plane_in = h * w;
    let ho = grad_output.shape()[2];
    let wo = grad_output.shape()[3];
    let plane_out = ho * wo;
    let inv = 1.0 / (k * k) as f32;
    let go = grad_output.data();
    let mut gx = Tensor::zeros(input_shape);
    let _scope = effects::kernel_scope("avg_pool2d_bwd");
    aibench_parallel::parallel_slice_mut(gx.data_mut(), plane_in, |range, gx_plane| {
        let plane = range.start / plane_in.max(1);
        effects::read(go, plane * plane_out..(plane + 1) * plane_out);
        let mut oi = plane * plane_out;
        for oy in 0..ho {
            for ox in 0..wo {
                let g = go[oi] * inv;
                oi += 1;
                for ky in 0..k {
                    for kx in 0..k {
                        gx_plane[(oy * stride + ky) * w + ox * stride + kx] += g;
                    }
                }
            }
        }
    });
    gx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_known_values() {
        let x = Tensor::from_vec((0..16).map(|i| i as f32).collect(), &[1, 1, 4, 4]);
        let (y, _) = max_pool2d(&x, 2, 2);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn max_pool_backward_routes_to_winner() {
        let x = Tensor::from_vec((0..16).map(|i| i as f32).collect(), &[1, 1, 4, 4]);
        let (y, winners) = max_pool2d(&x, 2, 2);
        let go = Tensor::ones(y.shape());
        let gx = max_pool2d_backward(&go, &winners, x.shape());
        assert_eq!(gx.sum(), 4.0);
        assert_eq!(gx.at(&[0, 0, 1, 1]), 1.0); // element 5 won the top-left window
        assert_eq!(gx.at(&[0, 0, 0, 0]), 0.0);
    }

    #[test]
    fn avg_pool_known_values() {
        let x = Tensor::from_vec((0..16).map(|i| i as f32).collect(), &[1, 1, 4, 4]);
        let y = avg_pool2d(&x, 2, 2);
        assert_eq!(y.data(), &[2.5, 4.5, 10.5, 12.5]);
    }

    #[test]
    fn avg_pool_backward_spreads_uniformly() {
        let x = Tensor::zeros(&[1, 1, 4, 4]);
        let go = Tensor::ones(&[1, 1, 2, 2]);
        let gx = avg_pool2d_backward(&go, x.shape(), 2, 2);
        assert!(gx.data().iter().all(|&v| (v - 0.25).abs() < 1e-6));
    }

    #[test]
    fn overlapping_stride() {
        let x = Tensor::from_vec((0..9).map(|i| i as f32).collect(), &[1, 1, 3, 3]);
        let (y, _) = max_pool2d(&x, 2, 1);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[4.0, 5.0, 7.0, 8.0]);
    }

    #[test]
    fn multi_plane_pooling_matches_per_plane() {
        // 3 batches x 2 channels: plane-parallel results must equal the
        // same pooling applied plane by plane.
        let x = Tensor::from_fn(&[3, 2, 4, 4], |i| ((i * 7919) % 101) as f32);
        let (y, winners) = max_pool2d(&x, 2, 2);
        let a = avg_pool2d(&x, 2, 2);
        for plane in 0..6 {
            let xp = Tensor::from_vec(
                x.data()[plane * 16..(plane + 1) * 16].to_vec(),
                &[1, 1, 4, 4],
            );
            let (yp, wp) = max_pool2d(&xp, 2, 2);
            let ap = avg_pool2d(&xp, 2, 2);
            assert_eq!(&y.data()[plane * 4..(plane + 1) * 4], yp.data());
            assert_eq!(&a.data()[plane * 4..(plane + 1) * 4], ap.data());
            for (oi, &wi) in wp.iter().enumerate() {
                assert_eq!(winners[plane * 4 + oi], wi + plane * 16);
            }
        }
    }
}

//! Numeric kernels: matrix multiplication, convolution, pooling, softmax,
//! and structural operations.
//!
//! These are free functions over [`Tensor`](crate::Tensor) so that the
//! autograd layer can call forward and backward variants symmetrically.

mod activation;
mod conv;
mod manip;
mod matmul;
pub mod microkernel;
mod pool;

pub use activation::{log_softmax_last, softmax_last};
pub use conv::{conv2d, conv2d_backward_input, conv2d_backward_weight, Conv2dArgs, ConvAlgo};
pub use manip::{concat, pad2d, slice_axis, unpad2d};
pub use matmul::{batch_matmul, matmul, matmul_naive};
pub use microkernel::{gemm_path, set_gemm_path, GemmPath};
pub use pool::{avg_pool2d, avg_pool2d_backward, max_pool2d, max_pool2d_backward};

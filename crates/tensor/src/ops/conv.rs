//! 2-D convolution via im2col + GEMM, with explicit backward kernels.
//!
//! Layout is NCHW for activations and `[c_out, c_in, kh, kw]` for weights.
//! The backward-input kernel doubles as the forward pass of transposed
//! convolution (used by the GAN generators and decoder networks), exactly as
//! cuDNN reuses its `wgrad`/`dgrad` engines.
//!
//! Forward and backward-input parallelize over samples (disjoint output
//! blocks; a single-sample batch instead parallelizes the inner GEMM over
//! out-channel rows). Backward-weight is a reduction over samples and uses
//! `aibench-parallel`'s order-stable chunked reduce: per-sample partial
//! gradients are folded in sample order, so all three kernels are bitwise
//! identical for every `AIBENCH_THREADS` value.

use aibench_parallel::effects;

use super::microkernel::gemm_into;
use crate::Tensor;

/// How [`conv2d`] lowers a given geometry.
///
/// Selection is a pure function of the shapes (never of data or thread
/// count), so a given geometry always takes the same path and results stay
/// deterministic. All paths accumulate each output element over
/// `(c_in, kh, kw)` in ascending index order — the same order the im2col
/// GEMM uses — so for unpadded geometries the paths are bitwise identical
/// (padding contributes explicit `+0.0` terms on the im2col path only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvAlgo {
    /// Unfold each sample into an im2col matrix, then one packed GEMM per
    /// sample. The default for everything with real spatial extent.
    Im2colGemm,
    /// 1x1 kernel, stride 1, no padding: the convolution *is* a GEMM over
    /// channels, computed in place with no unfold copy.
    DirectGemm,
    /// Tiny problems where allocating the im2col buffer dominates the
    /// arithmetic: plain nested loops over the output.
    DirectLoops,
}

/// Work (multiply-adds) below which [`ConvAlgo::DirectLoops`] wins over
/// paying the im2col allocation + copy.
const DIRECT_LOOPS_THRESHOLD_FLOPS: usize = 8 * 1024;

impl ConvAlgo {
    /// Selects the lowering for `conv2d(input, weight, args)` from shapes
    /// alone: `input` is `[n, c, h, w]`, `weight` is `[co, ci, kh, kw]`.
    pub fn select(input: &[usize], weight: &[usize], args: Conv2dArgs) -> ConvAlgo {
        let (h, w) = (input[2], input[3]);
        let (co, ci, kh, kw) = (weight[0], weight[1], weight[2], weight[3]);
        if kh == 1 && kw == 1 && args.stride == 1 && args.pad == 0 {
            return ConvAlgo::DirectGemm;
        }
        let ho = args.out_extent(h, kh);
        let wo = args.out_extent(w, kw);
        let flops_per_sample = co * ci * kh * kw * ho * wo;
        if flops_per_sample < DIRECT_LOOPS_THRESHOLD_FLOPS {
            return ConvAlgo::DirectLoops;
        }
        ConvAlgo::Im2colGemm
    }
}

/// Geometry of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dArgs {
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding in both spatial dimensions.
    pub pad: usize,
}

impl Conv2dArgs {
    /// Convolution with the given stride and padding.
    pub fn new(stride: usize, pad: usize) -> Self {
        assert!(stride > 0, "conv stride must be positive");
        Conv2dArgs { stride, pad }
    }

    /// Output spatial extent for an input extent and kernel extent.
    pub fn out_extent(&self, input: usize, kernel: usize) -> usize {
        (input + 2 * self.pad).saturating_sub(kernel) / self.stride + 1
    }
}

impl Default for Conv2dArgs {
    fn default() -> Self {
        Conv2dArgs { stride: 1, pad: 0 }
    }
}

/// Unfolds one NCHW sample into an im2col matrix `[c*kh*kw, ho*wo]`.
#[allow(clippy::too_many_arguments)] // full conv geometry is inherently wide
fn im2col(
    x: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    args: Conv2dArgs,
    ho: usize,
    wo: usize,
) -> Vec<f32> {
    let mut col = vec![0.0f32; c * kh * kw * ho * wo];
    let cols = ho * wo;
    for ci in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                let dst = &mut col[row * cols..(row + 1) * cols];
                for oy in 0..ho {
                    let iy = (oy * args.stride + ki) as isize - args.pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let src_row = &x[(ci * h + iy as usize) * w..(ci * h + iy as usize + 1) * w];
                    for ox in 0..wo {
                        let ix = (ox * args.stride + kj) as isize - args.pad as isize;
                        if ix >= 0 && ix < w as isize {
                            dst[oy * wo + ox] = src_row[ix as usize];
                        }
                    }
                }
            }
        }
    }
    col
}

/// Folds an im2col matrix back onto an NCHW sample, accumulating overlaps.
#[allow(clippy::too_many_arguments)] // full conv geometry is inherently wide
fn col2im(
    col: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    args: Conv2dArgs,
    ho: usize,
    wo: usize,
    out: &mut [f32],
) {
    let cols = ho * wo;
    for ci in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                let src = &col[row * cols..(row + 1) * cols];
                for oy in 0..ho {
                    let iy = (oy * args.stride + ki) as isize - args.pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let dst_row =
                        &mut out[(ci * h + iy as usize) * w..(ci * h + iy as usize + 1) * w];
                    for ox in 0..wo {
                        let ix = (ox * args.stride + kj) as isize - args.pad as isize;
                        if ix >= 0 && ix < w as isize {
                            dst_row[ix as usize] += src[oy * wo + ox];
                        }
                    }
                }
            }
        }
    }
}

/// 2-D convolution: input `[n, c_in, h, w]`, weight `[c_out, c_in, kh, kw]`
/// → `[n, c_out, ho, wo]`.
///
/// # Panics
///
/// Panics if ranks or channel counts disagree, or the kernel does not fit
/// the padded input.
pub fn conv2d(input: &Tensor, weight: &Tensor, args: Conv2dArgs) -> Tensor {
    assert_eq!(
        input.ndim(),
        4,
        "conv2d: input must be NCHW, got {:?}",
        input.shape()
    );
    assert_eq!(
        weight.ndim(),
        4,
        "conv2d: weight must be [co,ci,kh,kw], got {:?}",
        weight.shape()
    );
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (co, ci, kh, kw) = (
        weight.shape()[0],
        weight.shape()[1],
        weight.shape()[2],
        weight.shape()[3],
    );
    assert_eq!(c, ci, "conv2d: input channels {c} vs weight channels {ci}");
    assert!(
        h + 2 * args.pad >= kh && w + 2 * args.pad >= kw,
        "conv2d: kernel larger than padded input"
    );
    let ho = args.out_extent(h, kh);
    let wo = args.out_extent(w, kw);
    let kdim = ci * kh * kw;
    let cols = ho * wo;
    let algo = ConvAlgo::select(input.shape(), weight.shape(), args);
    let mut out = vec![0.0f32; n * co * cols];
    let _scope = effects::kernel_scope("conv2d_fwd");
    // One sample per chunk; each sample's lowering writes a disjoint
    // output block. The algorithm is fixed per geometry (see [`ConvAlgo`]).
    aibench_parallel::parallel_slice_mut(&mut out, co * cols, |range, out_s| {
        let s = range.start / (co * cols).max(1);
        effects::read(input.data(), s * c * h * w..(s + 1) * c * h * w);
        let x = &input.data()[s * c * h * w..(s + 1) * c * h * w];
        match algo {
            // 1x1/stride-1/unpadded: the sample itself is already the
            // [c, h*w] im2col matrix — multiply in place, no copy.
            ConvAlgo::DirectGemm => gemm_into(weight.data(), x, out_s, co, kdim, cols),
            ConvAlgo::DirectLoops => conv_direct_sample(
                x,
                weight.data(),
                out_s,
                (c, h, w),
                (co, kh, kw),
                args,
                ho,
                wo,
            ),
            ConvAlgo::Im2colGemm => {
                let col = im2col(x, c, h, w, kh, kw, args, ho, wo);
                gemm_into(weight.data(), &col, out_s, co, kdim, cols);
            }
        }
    });
    Tensor::from_vec(out, &[n, co, ho, wo])
}

/// Direct (loop-nest) convolution of one sample: each output element
/// accumulates over `(ci, ki, kj)` in ascending order — the im2col GEMM's
/// exact order — skipping out-of-bounds taps instead of multiplying
/// explicit zeros.
#[allow(clippy::too_many_arguments)] // full conv geometry is inherently wide
fn conv_direct_sample(
    x: &[f32],
    weight: &[f32],
    out_s: &mut [f32],
    (c, h, w): (usize, usize, usize),
    (co, kh, kw): (usize, usize, usize),
    args: Conv2dArgs,
    ho: usize,
    wo: usize,
) {
    for o in 0..co {
        let w_filter = &weight[o * c * kh * kw..(o + 1) * c * kh * kw];
        let out_plane = &mut out_s[o * ho * wo..(o + 1) * ho * wo];
        for oy in 0..ho {
            for ox in 0..wo {
                let mut acc = 0.0f32;
                for ci in 0..c {
                    for ki in 0..kh {
                        let iy = (oy * args.stride + ki) as isize - args.pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let x_row = &x[(ci * h + iy as usize) * w..(ci * h + iy as usize + 1) * w];
                        let w_row = &w_filter[(ci * kh + ki) * kw..(ci * kh + ki + 1) * kw];
                        for (kj, &wv) in w_row.iter().enumerate() {
                            let ix = (ox * args.stride + kj) as isize - args.pad as isize;
                            if ix >= 0 && ix < w as isize {
                                acc += x_row[ix as usize] * wv;
                            }
                        }
                    }
                }
                out_plane[oy * wo + ox] = acc;
            }
        }
    }
}

/// Gradient of [`conv2d`] with respect to its input.
///
/// Also the forward pass of transposed convolution: given `grad_output`
/// shaped `[n, c_out, ho, wo]` it produces `[n, c_in, h, w]` where `(h, w)`
/// are the provided original input extents.
///
/// # Panics
///
/// Panics on rank or channel mismatches.
pub fn conv2d_backward_input(
    grad_output: &Tensor,
    weight: &Tensor,
    input_hw: (usize, usize),
    args: Conv2dArgs,
) -> Tensor {
    assert_eq!(
        grad_output.ndim(),
        4,
        "conv2d_backward_input: grad must be NCHW"
    );
    assert_eq!(
        weight.ndim(),
        4,
        "conv2d_backward_input: weight must be 4-D"
    );
    let (n, co, ho, wo) = (
        grad_output.shape()[0],
        grad_output.shape()[1],
        grad_output.shape()[2],
        grad_output.shape()[3],
    );
    let (cow, ci, kh, kw) = (
        weight.shape()[0],
        weight.shape()[1],
        weight.shape()[2],
        weight.shape()[3],
    );
    assert_eq!(
        co, cow,
        "conv2d_backward_input: channel mismatch {co} vs {cow}"
    );
    let (h, w) = input_hw;
    let kdim = ci * kh * kw;
    let cols = ho * wo;
    // weight^T: [kdim, co]
    let wt = weight.reshape(&[co, kdim]).t();
    // For 1x1/stride-1/unpadded geometries col2im is the identity map, so
    // the GEMM can write the input gradient directly (no column buffer).
    let direct_1x1 = kh == 1 && kw == 1 && args.stride == 1 && args.pad == 0 && (ho, wo) == (h, w);
    let mut out = vec![0.0f32; n * ci * h * w];
    let _scope = effects::kernel_scope("conv2d_bwd_input");
    // One sample per chunk with a thread-local column buffer; each sample
    // folds into a disjoint input-gradient block.
    aibench_parallel::parallel_slice_mut(&mut out, ci * h * w, |range, out_s| {
        let s = range.start / (ci * h * w).max(1);
        effects::read(grad_output.data(), s * co * cols..(s + 1) * co * cols);
        let g = &grad_output.data()[s * co * cols..(s + 1) * co * cols];
        if direct_1x1 {
            gemm_into(wt.data(), g, out_s, kdim, co, cols);
        } else {
            let mut col = vec![0.0f32; kdim * cols];
            gemm_into(wt.data(), g, &mut col, kdim, co, cols);
            col2im(&col, ci, h, w, kh, kw, args, ho, wo, out_s);
        }
    });
    Tensor::from_vec(out, &[n, ci, h, w])
}

/// Gradient of [`conv2d`] with respect to its weight.
///
/// # Panics
///
/// Panics on rank or batch mismatches.
pub fn conv2d_backward_weight(
    input: &Tensor,
    grad_output: &Tensor,
    kernel_hw: (usize, usize),
    args: Conv2dArgs,
) -> Tensor {
    assert_eq!(
        input.ndim(),
        4,
        "conv2d_backward_weight: input must be NCHW"
    );
    assert_eq!(
        grad_output.ndim(),
        4,
        "conv2d_backward_weight: grad must be NCHW"
    );
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (n2, co, ho, wo) = (
        grad_output.shape()[0],
        grad_output.shape()[1],
        grad_output.shape()[2],
        grad_output.shape()[3],
    );
    assert_eq!(n, n2, "conv2d_backward_weight: batch mismatch");
    let (kh, kw) = kernel_hw;
    let kdim = c * kh * kw;
    let cols = ho * wo;
    // Weight gradients sum over samples: an order-stable chunked reduction
    // (one sample per chunk, partials folded in sample order) keeps the
    // result identical for every thread count, including serial runs.
    let _scope = effects::kernel_scope("conv2d_bwd_weight");
    let gw = aibench_parallel::parallel_reduce(
        n,
        1,
        || vec![0.0f32; co * kdim],
        |range| {
            let s = range.start;
            effects::read(input.data(), s * c * h * w..(s + 1) * c * h * w);
            effects::read(grad_output.data(), s * co * cols..(s + 1) * co * cols);
            let x = &input.data()[s * c * h * w..(s + 1) * c * h * w];
            let col = im2col(x, c, h, w, kh, kw, args, ho, wo);
            // grad_w_s = g [co, cols] * col^T [cols, kdim]
            let colt = Tensor::from_vec(col, &[kdim, cols]).t();
            let g = &grad_output.data()[s * co * cols..(s + 1) * co * cols];
            let mut gw_s = vec![0.0f32; co * kdim];
            gemm_into(g, colt.data(), &mut gw_s, co, cols, kdim);
            gw_s
        },
        |mut acc, part| {
            for (a, b) in acc.iter_mut().zip(&part) {
                *a += b;
            }
            acc
        },
    );
    Tensor::from_vec(gw, &[co, c, kh, kw])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    /// Direct (non-im2col) reference convolution.
    fn conv2d_direct(input: &Tensor, weight: &Tensor, args: Conv2dArgs) -> Tensor {
        let (n, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let (co, _, kh, kw) = (
            weight.shape()[0],
            weight.shape()[1],
            weight.shape()[2],
            weight.shape()[3],
        );
        let ho = args.out_extent(h, kh);
        let wo = args.out_extent(w, kw);
        let mut out = Tensor::zeros(&[n, co, ho, wo]);
        for s in 0..n {
            for o in 0..co {
                for oy in 0..ho {
                    for ox in 0..wo {
                        let mut acc = 0.0;
                        for ci in 0..c {
                            for ki in 0..kh {
                                for kj in 0..kw {
                                    let iy = (oy * args.stride + ki) as isize - args.pad as isize;
                                    let ix = (ox * args.stride + kj) as isize - args.pad as isize;
                                    if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                        acc += input.at(&[s, ci, iy as usize, ix as usize])
                                            * weight.at(&[o, ci, ki, kj]);
                                    }
                                }
                            }
                        }
                        out.set(&[s, o, oy, ox], acc);
                    }
                }
            }
        }
        out
    }

    #[test]
    fn matches_direct_various_geometries() {
        let mut rng = Rng::seed_from(2);
        for &(c, h, w, co, k, stride, pad) in &[
            (1, 5, 5, 1, 3, 1, 0),
            (3, 8, 8, 4, 3, 1, 1),
            (2, 7, 9, 3, 3, 2, 1),
            (1, 4, 4, 2, 1, 1, 0),
        ] {
            let x = Tensor::randn(&[2, c, h, w], &mut rng);
            let wt = Tensor::randn(&[co, c, k, k], &mut rng);
            let args = Conv2dArgs::new(stride, pad);
            let fast = conv2d(&x, &wt, args);
            let slow = conv2d_direct(&x, &wt, args);
            assert!(
                fast.max_abs_diff(&slow) < 1e-4,
                "geometry ({c},{h},{w},{co},{k},{stride},{pad})"
            );
        }
    }

    #[test]
    fn backward_input_matches_finite_difference() {
        let mut rng = Rng::seed_from(5);
        let x = Tensor::randn(&[1, 2, 5, 5], &mut rng);
        let w = Tensor::randn(&[3, 2, 3, 3], &mut rng);
        let args = Conv2dArgs::new(1, 1);
        let y = conv2d(&x, &w, args);
        // Loss = sum(y); grad_output = ones.
        let go = Tensor::ones(y.shape());
        let gx = conv2d_backward_input(&go, &w, (5, 5), args);
        let eps = 1e-2;
        for i in [0usize, 7, 24, 49] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (conv2d(&xp, &w, args).sum() - conv2d(&xm, &w, args).sum()) / (2.0 * eps);
            assert!(
                (num - gx.data()[i]).abs() < 1e-2,
                "dx[{i}]: numeric {num} vs analytic {}",
                gx.data()[i]
            );
        }
    }

    #[test]
    fn backward_weight_matches_finite_difference() {
        let mut rng = Rng::seed_from(6);
        let x = Tensor::randn(&[2, 2, 5, 5], &mut rng);
        let w = Tensor::randn(&[3, 2, 3, 3], &mut rng);
        let args = Conv2dArgs::new(2, 1);
        let y = conv2d(&x, &w, args);
        let go = Tensor::ones(y.shape());
        let gw = conv2d_backward_weight(&x, &go, (3, 3), args);
        let eps = 1e-2;
        for i in [0usize, 5, 17, 53] {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let num = (conv2d(&x, &wp, args).sum() - conv2d(&x, &wm, args).sum()) / (2.0 * eps);
            assert!(
                (num - gw.data()[i]).abs() < 2e-2,
                "dw[{i}]: numeric {num} vs analytic {}",
                gw.data()[i]
            );
        }
    }

    #[test]
    fn transposed_conv_upsamples() {
        // backward_input used as deconv: [1,co,2,2] -> [1,ci,4,4] with k=2 stride=2.
        let mut rng = Rng::seed_from(7);
        let g = Tensor::randn(&[1, 3, 2, 2], &mut rng);
        let w = Tensor::randn(&[3, 2, 2, 2], &mut rng);
        let up = conv2d_backward_input(&g, &w, (4, 4), Conv2dArgs::new(2, 0));
        assert_eq!(up.shape(), &[1, 2, 4, 4]);
    }

    #[test]
    #[should_panic(expected = "channels")]
    fn channel_mismatch_panics() {
        let x = Tensor::ones(&[1, 2, 4, 4]);
        let w = Tensor::ones(&[1, 3, 3, 3]);
        let _ = conv2d(&x, &w, Conv2dArgs::default());
    }
}

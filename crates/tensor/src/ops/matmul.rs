//! Blocked matrix multiplication.
//!
//! All entry points are multi-threaded over disjoint output-row blocks via
//! `aibench-parallel`: each output row is produced entirely by one thread
//! with the same inner-loop order as serial code, so results are bitwise
//! identical for every `AIBENCH_THREADS` value.

use aibench_parallel::effects;

use crate::Tensor;

/// Cache-blocking tile edge. 32×32 f32 tiles (4 KiB each) keep three tiles
/// comfortably inside a typical 32 KiB L1 data cache.
const TILE: usize = 32;

/// Output rows handed to one worker at a time: a whole cache tile, so the
/// parallel row partition coincides with the serial blocking.
const ROW_CHUNK: usize = TILE;

/// Matrix product of two 2-D tensors: `[m, k] x [k, n] -> [m, n]`.
///
/// Uses i-k-j loop order with register accumulation and `TILE`-blocked
/// traversal, which is typically 5-15x faster than the naive i-j-k order for
/// the GEMM shapes used by the benchmark models.
///
/// # Panics
///
/// Panics if either input is not 2-D or the inner dimensions disagree.
///
/// # Example
///
/// ```
/// use aibench_tensor::{ops::matmul, Tensor};
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
/// assert_eq!(matmul(&a, &i), a);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2, "matmul: lhs must be 2-D, got {:?}", a.shape());
    assert_eq!(b.ndim(), 2, "matmul: rhs must be 2-D, got {:?}", b.shape());
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(
        k,
        k2,
        "matmul: inner dims {k} vs {k2} (lhs {:?}, rhs {:?})",
        a.shape(),
        b.shape()
    );
    let mut out = vec![0.0f32; m * n];
    gemm_into(a.data(), b.data(), &mut out, m, k, n);
    Tensor::from_vec(out, &[m, n])
}

/// Batched matrix product: `[b, m, k] x [b, k, n] -> [b, m, n]`.
///
/// # Panics
///
/// Panics if either input is not 3-D or batch/inner dimensions disagree.
pub fn batch_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(
        a.ndim(),
        3,
        "batch_matmul: lhs must be 3-D, got {:?}",
        a.shape()
    );
    assert_eq!(
        b.ndim(),
        3,
        "batch_matmul: rhs must be 3-D, got {:?}",
        b.shape()
    );
    let (ba, m, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
    let (bb, k2, n) = (b.shape()[0], b.shape()[1], b.shape()[2]);
    assert_eq!(ba, bb, "batch_matmul: batch dims {ba} vs {bb}");
    assert_eq!(k, k2, "batch_matmul: inner dims {k} vs {k2}");
    let mut out = vec![0.0f32; ba * m * n];
    let _scope = effects::kernel_scope("batch_matmul");
    // One batch entry per chunk; every entry's GEMM is independent.
    aibench_parallel::parallel_slice_mut(&mut out, m * n, |range, out_i| {
        let i = range.start / (m * n).max(1);
        effects::read(a.data(), i * m * k..(i + 1) * m * k);
        effects::read(b.data(), i * k * n..(i + 1) * k * n);
        gemm_into(
            &a.data()[i * m * k..(i + 1) * m * k],
            &b.data()[i * k * n..(i + 1) * k * n],
            out_i,
            m,
            k,
            n,
        );
    });
    Tensor::from_vec(out, &[ba, m, n])
}

/// `out += a[m,k] * b[k,n]` over pre-zeroed `out`, parallel over
/// [`ROW_CHUNK`]-row blocks. Each output row accumulates in the same
/// `k0`/`j0` tile order regardless of which thread owns it, so the result
/// does not depend on the thread count.
pub(crate) fn gemm_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(out.len(), m * n);
    let _scope = effects::kernel_scope("gemm");
    aibench_parallel::parallel_slice_mut(out, ROW_CHUNK * n, |rows, out_block| {
        debug_assert_eq!(rows.start % n, 0);
        let i_lo = rows.start / n;
        let i_hi = rows.end / n;
        // Each row block reads its own band of `a` and all of `b`; shared
        // reads never conflict.
        effects::read(a, i_lo * k..i_hi * k);
        effects::read(b, 0..k * n);
        gemm_rows_into(a, b, out_block, i_lo..i_hi, k, n);
    });
}

/// Serial tile-blocked GEMM over the output rows `i_range`; `out_block` is
/// the output slice for exactly those rows.
fn gemm_rows_into(
    a: &[f32],
    b: &[f32],
    out_block: &mut [f32],
    i_range: std::ops::Range<usize>,
    k: usize,
    n: usize,
) {
    let (i_lo, i_hi) = (i_range.start, i_range.end);
    for i0 in (i_lo..i_hi).step_by(TILE) {
        let i1 = (i0 + TILE).min(i_hi);
        for k0 in (0..k).step_by(TILE) {
            let k1 = (k0 + TILE).min(k);
            for j0 in (0..n).step_by(TILE) {
                let j1 = (j0 + TILE).min(n);
                for i in i0..i1 {
                    let a_row = &a[i * k..i * k + k];
                    let out_row = &mut out_block[(i - i_lo) * n..(i - i_lo) * n + n];
                    for kk in k0..k1 {
                        let av = a_row[kk];
                        if av == 0.0 {
                            continue;
                        }
                        let b_row = &b[kk * n..kk * n + n];
                        for j in j0..j1 {
                            out_row[j] += av * b_row[j];
                        }
                    }
                }
            }
        }
    }
}

/// Naive reference GEMM, used only for validation and the matmul ablation
/// bench.
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2, "matmul_naive: lhs must be 2-D");
    assert_eq!(b.ndim(), 2, "matmul_naive: rhs must be 2-D");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let n = b.shape()[1];
    assert_eq!(k, b.shape()[0], "matmul_naive inner dim mismatch");
    let mut out = Tensor::zeros(&[m, n]);
    let (a_data, b_data) = (a.data(), b.data());
    let _scope = effects::kernel_scope("matmul_naive");
    // Row-parallel like the blocked kernel; each dot product is computed
    // by one thread in index order, so results are thread-count invariant.
    aibench_parallel::parallel_slice_mut(out.data_mut(), n.max(1), |range, out_row| {
        let i = range.start / n.max(1);
        effects::read(a_data, i * k..(i + 1) * k);
        effects::read(b_data, 0..k * n);
        for (j, o) in out_row.iter_mut().enumerate() {
            let mut acc = 0.0;
            for kk in 0..k {
                acc += a_data[i * k + kk] * b_data[kk * n + j];
            }
            *o = acc;
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let eye = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        assert_eq!(matmul(&a, &eye), a);
    }

    #[test]
    fn known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn blocked_matches_naive() {
        let mut rng = Rng::seed_from(3);
        for &(m, k, n) in &[(1, 1, 1), (5, 7, 3), (33, 40, 65), (64, 64, 64)] {
            let a = Tensor::randn(&[m, k], &mut rng);
            let b = Tensor::randn(&[k, n], &mut rng);
            let fast = matmul(&a, &b);
            let slow = matmul_naive(&a, &b);
            assert!(fast.max_abs_diff(&slow) < 1e-4, "mismatch at ({m},{k},{n})");
        }
    }

    #[test]
    fn batch_matches_loop() {
        let mut rng = Rng::seed_from(4);
        let a = Tensor::randn(&[3, 4, 5], &mut rng);
        let b = Tensor::randn(&[3, 5, 2], &mut rng);
        let c = batch_matmul(&a, &b);
        assert_eq!(c.shape(), &[3, 4, 2]);
        for i in 0..3 {
            let ai = Tensor::from_vec(a.data()[i * 20..(i + 1) * 20].to_vec(), &[4, 5]);
            let bi = Tensor::from_vec(b.data()[i * 10..(i + 1) * 10].to_vec(), &[5, 2]);
            let ci = matmul(&ai, &bi);
            let got = &c.data()[i * 8..(i + 1) * 8];
            for (x, y) in ci.data().iter().zip(got) {
                assert!((x - y).abs() < 1e-5);
            }
        }
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn mismatched_inner_dim_panics() {
        let a = Tensor::ones(&[2, 3]);
        let b = Tensor::ones(&[4, 2]);
        let _ = matmul(&a, &b);
    }
}

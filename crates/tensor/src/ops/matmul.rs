//! Matrix multiplication entry points.
//!
//! All products lower onto the packed cache-blocked microkernels in
//! [`super::microkernel`], multi-threaded over disjoint output-row blocks
//! via `aibench-parallel`: each output row is produced entirely by one
//! thread with per-element accumulation in ascending `k` order, so results
//! are bitwise identical for every `AIBENCH_THREADS` value — and bitwise
//! identical to [`matmul_naive`].

use aibench_parallel::effects;

use super::microkernel::gemm_into;
use crate::Tensor;

/// Matrix product of two 2-D tensors: `[m, k] x [k, n] -> [m, n]`.
///
/// Lowers onto the packed register-tiled microkernel (see
/// [`super::microkernel`]), which is typically 2-4x faster than the scalar
/// tiled kernel for the GEMM shapes used by the benchmark models, and
/// bitwise identical to the naive i-j-k loop.
///
/// # Panics
///
/// Panics if either input is not 2-D or the inner dimensions disagree.
///
/// # Example
///
/// ```
/// use aibench_tensor::{ops::matmul, Tensor};
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
/// assert_eq!(matmul(&a, &i), a);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2, "matmul: lhs must be 2-D, got {:?}", a.shape());
    assert_eq!(b.ndim(), 2, "matmul: rhs must be 2-D, got {:?}", b.shape());
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(
        k,
        k2,
        "matmul: inner dims {k} vs {k2} (lhs {:?}, rhs {:?})",
        a.shape(),
        b.shape()
    );
    let mut out = vec![0.0f32; m * n];
    gemm_into(a.data(), b.data(), &mut out, m, k, n);
    Tensor::from_vec(out, &[m, n])
}

/// Batched matrix product: `[b, m, k] x [b, k, n] -> [b, m, n]`.
///
/// # Panics
///
/// Panics if either input is not 3-D or batch/inner dimensions disagree.
pub fn batch_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(
        a.ndim(),
        3,
        "batch_matmul: lhs must be 3-D, got {:?}",
        a.shape()
    );
    assert_eq!(
        b.ndim(),
        3,
        "batch_matmul: rhs must be 3-D, got {:?}",
        b.shape()
    );
    let (ba, m, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
    let (bb, k2, n) = (b.shape()[0], b.shape()[1], b.shape()[2]);
    assert_eq!(ba, bb, "batch_matmul: batch dims {ba} vs {bb}");
    assert_eq!(k, k2, "batch_matmul: inner dims {k} vs {k2}");
    let mut out = vec![0.0f32; ba * m * n];
    let _scope = effects::kernel_scope("batch_matmul");
    // One batch entry per chunk; every entry's GEMM is independent.
    aibench_parallel::parallel_slice_mut(&mut out, m * n, |range, out_i| {
        let i = range.start / (m * n).max(1);
        effects::read(a.data(), i * m * k..(i + 1) * m * k);
        effects::read(b.data(), i * k * n..(i + 1) * k * n);
        gemm_into(
            &a.data()[i * m * k..(i + 1) * m * k],
            &b.data()[i * k * n..(i + 1) * k * n],
            out_i,
            m,
            k,
            n,
        );
    });
    Tensor::from_vec(out, &[ba, m, n])
}

/// Naive reference GEMM, used for validation (the bitwise oracle of the
/// microkernel regression tests) and the matmul ablation bench.
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2, "matmul_naive: lhs must be 2-D");
    assert_eq!(b.ndim(), 2, "matmul_naive: rhs must be 2-D");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let n = b.shape()[1];
    assert_eq!(k, b.shape()[0], "matmul_naive inner dim mismatch");
    let mut out = Tensor::zeros(&[m, n]);
    let (a_data, b_data) = (a.data(), b.data());
    let _scope = effects::kernel_scope("matmul_naive");
    // Row-parallel like the blocked kernel; each dot product is computed
    // by one thread in index order, so results are thread-count invariant.
    aibench_parallel::parallel_slice_mut(out.data_mut(), n.max(1), |range, out_row| {
        let i = range.start / n.max(1);
        effects::read(a_data, i * k..(i + 1) * k);
        effects::read(b_data, 0..k * n);
        for (j, o) in out_row.iter_mut().enumerate() {
            let mut acc = 0.0;
            for kk in 0..k {
                acc += a_data[i * k + kk] * b_data[kk * n + j];
            }
            *o = acc;
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let eye = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        assert_eq!(matmul(&a, &eye), a);
    }

    #[test]
    fn known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn blocked_matches_naive_bitwise() {
        let mut rng = Rng::seed_from(3);
        for &(m, k, n) in &[(1, 1, 1), (5, 7, 3), (33, 40, 65), (64, 64, 64)] {
            let a = Tensor::randn(&[m, k], &mut rng);
            let b = Tensor::randn(&[k, n], &mut rng);
            let fast = matmul(&a, &b);
            let slow = matmul_naive(&a, &b);
            assert!(
                fast.data()
                    .iter()
                    .zip(slow.data())
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "mismatch at ({m},{k},{n})"
            );
        }
    }

    #[test]
    fn batch_matches_loop() {
        let mut rng = Rng::seed_from(4);
        let a = Tensor::randn(&[3, 4, 5], &mut rng);
        let b = Tensor::randn(&[3, 5, 2], &mut rng);
        let c = batch_matmul(&a, &b);
        assert_eq!(c.shape(), &[3, 4, 2]);
        for i in 0..3 {
            let ai = Tensor::from_vec(a.data()[i * 20..(i + 1) * 20].to_vec(), &[4, 5]);
            let bi = Tensor::from_vec(b.data()[i * 10..(i + 1) * 10].to_vec(), &[5, 2]);
            let ci = matmul(&ai, &bi);
            let got = &c.data()[i * 8..(i + 1) * 8];
            for (x, y) in ci.data().iter().zip(got) {
                assert!((x - y).abs() < 1e-5);
            }
        }
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn mismatched_inner_dim_panics() {
        let a = Tensor::ones(&[2, 3]);
        let b = Tensor::ones(&[4, 2]);
        let _ = matmul(&a, &b);
    }
}

//! Packed, cache-blocked GEMM microkernels.
//!
//! This module is the hot core of every dense kernel in the workspace:
//! [`matmul`](super::matmul::matmul), `batch_matmul`, and all three conv2d
//! kernels lower onto `gemm_into`, which picks between three bitwise-
//! identical implementations by shape: above [`PACK_THRESHOLD_FLOPS`], the
//! classic three-level blocking scheme (GotoBLAS/BLIS) — operand matrices
//! repacked into contiguous panels sized for the cache hierarchy, swept by
//! an `MR x NR` register-tiled microkernel with all `C` accumulators held
//! in registers; below it, the same register microtile reading `A`/`B` in
//! place (small operands are already cache-resident, so packing would only
//! add traffic); and a 32x32 scalar tiled kernel kept as the measurement
//! baseline ([`GemmPath::Scalar`]).
//!
//! # Blocking parameters
//!
//! | constant | value | role |
//! |---|---|---|
//! | [`MR`] | 4 | microtile rows (accumulator rows held in registers) |
//! | [`NR`] | 8 | microtile columns (two 4-lane / one 8-lane SIMD vector) |
//! | [`MC`] | 64 | rows per parallel row block (also the A-pack block) |
//! | [`KC`] | 256 | k-panel depth; one A strip (`MR x KC`) is 4 KiB |
//!
//! A `KC x NR` B strip (8 KiB) stays L1-resident while every row tile of a
//! block sweeps it; an `MC x KC` A block (64 KiB) sits in L2. The parallel
//! decomposition hands whole `MC`-row blocks to `aibench-parallel`, so the
//! thread partition coincides with the cache blocking exactly as the
//! previous scalar kernel's did.
//!
//! # Determinism
//!
//! Every path in this module — packed microkernel, in-place register-tiled
//! kernel, scalar tiled baseline, and the optional `simd` builds of each —
//! accumulates each output element
//! `C[i, j]` in **ascending `k` order with one `mul` + one `add` per term**
//! (no FMA contraction, no tree reduction over `k`). Packing only moves
//! inputs; padded lanes multiply into discarded scratch rows/columns and
//! never feed a live accumulator, and `k` is never padded. The result is
//! bitwise identical to the naive triple loop for every path, every blocking
//! parameter, and every `AIBENCH_THREADS` value — which is what lets
//! `tests/microkernel_bitwise.rs` pin all paths against
//! [`matmul_naive`](super::matmul::matmul_naive) exactly, not approximately.
//!
//! # The `simd` feature
//!
//! With the crate's `simd` feature enabled (nightly toolchain required),
//! the microkernel's inner loop uses `std::simd` 8-lane vectors explicitly
//! instead of relying on autovectorization. Lanes map one-to-one onto the
//! `NR` microtile columns, so each element still sees the same scalar
//! operation sequence: the `simd` build is bitwise identical to the default
//! build by construction, and the regression tests run unchanged under it.

use std::sync::atomic::{AtomicU8, Ordering};

use aibench_parallel::effects;

/// Microtile rows: the microkernel keeps `MR x NR` accumulators live.
pub const MR: usize = 4;
/// Microtile columns: one 8-lane (or two 4-lane) f32 SIMD vector.
pub const NR: usize = 8;
/// Rows per parallel row block and per packed-A block.
pub const MC: usize = 64;
/// Depth of one packed k-panel.
pub const KC: usize = 256;

/// Minimum multiply-add count (`m * k * n`) for the packed path; below it
/// the repacking overhead outweighs the cache-blocking win and the in-place
/// register-tiled kernel (`gemm_small`) is used instead. Size-derived
/// only, so path selection never depends on the thread count.
pub const PACK_THRESHOLD_FLOPS: usize = 24 * 1024;

/// Which GEMM implementation `gemm_into` dispatches to.
///
/// The default, [`GemmPath::Blocked`], picks the packed microkernel for
/// shapes above [`PACK_THRESHOLD_FLOPS`] and the in-place register-tiled
/// kernel below it. [`GemmPath::Scalar`] forces the pre-microkernel 32x32
/// tiled scalar kernel everywhere; the `aibench-perf` harness uses it to
/// measure the microkernels' speedup against that baseline in one process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmPath {
    /// Packed microkernel above the size threshold, in-place register
    /// tiling below it.
    Blocked,
    /// Always the 32x32 tiled scalar kernel (the measurement baseline).
    Scalar,
}

static GEMM_PATH: AtomicU8 = AtomicU8::new(0);

/// Selects the GEMM implementation process-wide.
///
/// Both paths produce bitwise-identical results (see the module docs), so
/// this is purely a measurement aid: the perf harness flips it to time the
/// scalar baseline against the microkernel in the same process. Not
/// intended to be raced from concurrent threads.
pub fn set_gemm_path(path: GemmPath) {
    GEMM_PATH.store(
        match path {
            GemmPath::Blocked => 0,
            GemmPath::Scalar => 1,
        },
        Ordering::Relaxed,
    );
}

/// The currently selected GEMM implementation (see [`set_gemm_path`]).
pub fn gemm_path() -> GemmPath {
    match GEMM_PATH.load(Ordering::Relaxed) {
        1 => GemmPath::Scalar,
        _ => GemmPath::Blocked,
    }
}

/// `out += a[m,k] * b[k,n]` over pre-zeroed (or pre-accumulated) `out`.
///
/// Dispatches per [`gemm_path`]: the packed microkernel for large shapes,
/// the in-place register-tiled kernel for small ones, and the scalar tiled
/// baseline when forced. All paths are bitwise identical to the naive
/// triple loop and to each other, for every `AIBENCH_THREADS` value.
pub(crate) fn gemm_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(out.len(), m * n);
    if gemm_path() == GemmPath::Scalar {
        gemm_tiled(a, b, out, m, k, n);
    } else if m * k * n >= PACK_THRESHOLD_FLOPS && n >= NR {
        gemm_packed(a, b, out, m, k, n);
    } else {
        gemm_small(a, b, out, m, k, n);
    }
}

// ---------------------------------------------------------------------
// Scalar tiled baseline (the pre-microkernel kernel)
// ---------------------------------------------------------------------

/// Cache tile edge of the scalar baseline kernel: 32x32 f32 tiles (4 KiB)
/// keep three tiles inside a typical 32 KiB L1.
const TILE: usize = 32;

/// Scalar 32x32-tiled GEMM, parallel over [`TILE`]-row blocks. This is the
/// kernel the microkernel replaced; it remains the small-shape path and the
/// `aibench-perf` scalar baseline.
pub(crate) fn gemm_tiled(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(out.len(), m * n);
    let _scope = effects::kernel_scope("gemm");
    aibench_parallel::parallel_slice_mut(out, TILE * n, |rows, out_block| {
        debug_assert_eq!(rows.start % n.max(1), 0);
        let i_lo = rows.start / n.max(1);
        let i_hi = rows.end / n.max(1);
        // Each row block reads its own band of `a` and all of `b`; shared
        // reads never conflict.
        effects::read(a, i_lo * k..i_hi * k);
        effects::read(b, 0..k * n);
        gemm_rows_tiled(a, b, out_block, i_lo..i_hi, k, n);
    });
}

/// Serial tile-blocked GEMM over the output rows `i_range`; `out_block` is
/// the output slice for exactly those rows. Accumulates each element in
/// ascending `k` order (bitwise-equal to the naive loop).
fn gemm_rows_tiled(
    a: &[f32],
    b: &[f32],
    out_block: &mut [f32],
    i_range: std::ops::Range<usize>,
    k: usize,
    n: usize,
) {
    let (i_lo, i_hi) = (i_range.start, i_range.end);
    for i0 in (i_lo..i_hi).step_by(TILE) {
        let i1 = (i0 + TILE).min(i_hi);
        for k0 in (0..k).step_by(TILE) {
            let k1 = (k0 + TILE).min(k);
            for j0 in (0..n).step_by(TILE) {
                let j1 = (j0 + TILE).min(n);
                for i in i0..i1 {
                    let a_row = &a[i * k..i * k + k];
                    let out_row = &mut out_block[(i - i_lo) * n..(i - i_lo) * n + n];
                    for kk in k0..k1 {
                        let av = a_row[kk];
                        let b_row = &b[kk * n..kk * n + n];
                        for j in j0..j1 {
                            out_row[j] += av * b_row[j];
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// In-place register-tiled path (small shapes)
// ---------------------------------------------------------------------

/// Register-tiled GEMM for sub-threshold shapes: the same `MR x NR`
/// microtile as the packed path, but reading `A` and `B` in place. At
/// these sizes both operands are cache-resident already, so packing would
/// only add memory traffic; the win over the scalar tiled baseline is
/// keeping each `C` microtile in registers across the whole `k` extent
/// (one load + one store per output element instead of one per k-tile).
fn gemm_small(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(out.len(), m * n);
    let tail = pack_tail(b, k, n);
    let _scope = effects::kernel_scope("gemm");
    aibench_parallel::parallel_slice_mut(out, TILE * n.max(1), |rows, out_block| {
        debug_assert_eq!(rows.start % n.max(1), 0);
        let i_lo = rows.start / n.max(1);
        let i_hi = rows.end / n.max(1);
        effects::read(a, i_lo * k..i_hi * k);
        effects::read(b, 0..k * n);
        effects::read(&tail, 0..tail.len());
        gemm_rows_small(a, b, &tail, out_block, i_lo..i_hi, k, n);
    });
}

/// Packs the `n % NR` trailing columns of `b[k, n]` into one zero-padded
/// `NR`-wide strip (element `(kk, j)` at `kk * NR + j`, the same layout as
/// a [`pack_b`] strip). Returns an empty vector when `NR` divides `n`.
/// This keeps the column remainder on the register microkernel — padded
/// lanes accumulate into discarded scratch columns — instead of a slow
/// per-element tail loop.
fn pack_tail(b: &[f32], k: usize, n: usize) -> Vec<f32> {
    let rem = n % NR;
    if rem == 0 {
        return Vec::new();
    }
    let j0 = n - rem;
    let mut tail = vec![0.0f32; k * NR];
    for kk in 0..k {
        tail[kk * NR..kk * NR + rem].copy_from_slice(&b[kk * n + j0..kk * n + j0 + rem]);
    }
    tail
}

/// Serial register-tiled GEMM over the output rows `i_range`. Full
/// `MR x NR` tiles run the in-place microkernel against `b` directly; the
/// column remainder runs it against the pre-packed `tail` strip; the row
/// remainder uses a single-row variant. Every path accumulates each
/// element in ascending `k` order, bitwise-equal to the naive loop.
fn gemm_rows_small(
    a: &[f32],
    b: &[f32],
    tail: &[f32],
    out_block: &mut [f32],
    i_range: std::ops::Range<usize>,
    k: usize,
    n: usize,
) {
    let (i_lo, i_hi) = (i_range.start, i_range.end);
    let rem = n % NR;
    let n_full = n - rem;
    for i0 in (i_lo..i_hi).step_by(MR) {
        let live = MR.min(i_hi - i0);
        for j0 in (0..n_full).step_by(NR) {
            let mut acc = [[0.0f32; NR]; MR];
            for (r, acc_row) in acc.iter_mut().enumerate().take(live) {
                let c_row = &out_block[(i0 - i_lo + r) * n + j0..(i0 - i_lo + r) * n + j0 + NR];
                acc_row.copy_from_slice(c_row);
            }
            if live == MR {
                micro_tile_inplace(a, b, i0, j0, k, n, &mut acc);
            } else {
                for (r, acc_row) in acc.iter_mut().enumerate().take(live) {
                    row_tile_inplace(a, b, i0 + r, j0, k, n, acc_row);
                }
            }
            for (r, acc_row) in acc.iter().enumerate().take(live) {
                let c_row = &mut out_block[(i0 - i_lo + r) * n + j0..(i0 - i_lo + r) * n + j0 + NR];
                c_row.copy_from_slice(acc_row);
            }
        }
        if rem > 0 {
            // Column remainder via the packed tail strip (stride NR,
            // offset 0); only the `rem` live columns are stored back.
            let mut acc = [[0.0f32; NR]; MR];
            for (r, acc_row) in acc.iter_mut().enumerate().take(live) {
                let c_row =
                    &out_block[(i0 - i_lo + r) * n + n_full..(i0 - i_lo + r) * n + n_full + rem];
                acc_row[..rem].copy_from_slice(c_row);
            }
            if live == MR {
                micro_tile_inplace(a, tail, i0, 0, k, NR, &mut acc);
            } else {
                for (r, acc_row) in acc.iter_mut().enumerate().take(live) {
                    row_tile_inplace(a, tail, i0 + r, 0, k, NR, acc_row);
                }
            }
            for (r, acc_row) in acc.iter().enumerate().take(live) {
                let c_row = &mut out_block
                    [(i0 - i_lo + r) * n + n_full..(i0 - i_lo + r) * n + n_full + rem];
                c_row.copy_from_slice(&acc_row[..rem]);
            }
        }
    }
}

/// In-place `MR x NR` microkernel: `acc += A[i0.., :] * B[:, j0..]` with
/// `A` read at its natural stride and `B` rows read at stride `b_stride`
/// from offset `j0` (pass the packed tail strip with `j0 = 0`,
/// `b_stride = NR` for the column remainder). Scalar build; autovectorizes
/// over the `NR` lane loop.
#[cfg(not(feature = "simd"))]
#[inline]
fn micro_tile_inplace(
    a: &[f32],
    b: &[f32],
    i0: usize,
    j0: usize,
    k: usize,
    b_stride: usize,
    acc: &mut [[f32; NR]; MR],
) {
    for kk in 0..k {
        let bv: &[f32] = &b[kk * b_stride + j0..kk * b_stride + j0 + NR];
        for (r, acc_row) in acc.iter_mut().enumerate() {
            let av = a[(i0 + r) * k + kk];
            for j in 0..NR {
                acc_row[j] += av * bv[j];
            }
        }
    }
}

/// In-place `MR x NR` microkernel, explicit `std::simd` build (same lane
/// mapping as the packed [`micro_tile`]; bitwise-identical to the
/// autovectorized build).
#[cfg(feature = "simd")]
#[inline]
fn micro_tile_inplace(
    a: &[f32],
    b: &[f32],
    i0: usize,
    j0: usize,
    k: usize,
    b_stride: usize,
    acc: &mut [[f32; NR]; MR],
) {
    use std::simd::Simd;
    let mut v: [Simd<f32, NR>; MR] = [
        Simd::from_array(acc[0]),
        Simd::from_array(acc[1]),
        Simd::from_array(acc[2]),
        Simd::from_array(acc[3]),
    ];
    for kk in 0..k {
        let bv: Simd<f32, NR> = Simd::from_slice(&b[kk * b_stride + j0..kk * b_stride + j0 + NR]);
        for (r, vr) in v.iter_mut().enumerate() {
            *vr += Simd::splat(a[(i0 + r) * k + kk]) * bv;
        }
    }
    for (r, vr) in v.iter().enumerate() {
        acc[r] = vr.to_array();
    }
}

/// Single-row edge of the in-place microkernel (row remainder when fewer
/// than `MR` live rows remain). Same `B` addressing as
/// [`micro_tile_inplace`].
#[inline]
fn row_tile_inplace(
    a: &[f32],
    b: &[f32],
    i: usize,
    j0: usize,
    k: usize,
    b_stride: usize,
    acc_row: &mut [f32; NR],
) {
    for kk in 0..k {
        let av = a[i * k + kk];
        let bv = &b[kk * b_stride + j0..kk * b_stride + j0 + NR];
        for j in 0..NR {
            acc_row[j] += av * bv[j];
        }
    }
}

// ---------------------------------------------------------------------
// Packed microkernel path
// ---------------------------------------------------------------------

/// Packed cache-blocked GEMM. `B` is packed once into `KC x NR` strips
/// (shared read-only by all row blocks); each `MC`-row block then packs its
/// own `A` panel and sweeps the microkernel.
fn gemm_packed(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(out.len(), m * n);
    let bp = pack_b(b, k, n);
    let _scope = effects::kernel_scope("gemm");
    aibench_parallel::parallel_slice_mut(out, MC * n, |rows, out_block| {
        debug_assert_eq!(rows.start % n, 0);
        let i_lo = rows.start / n;
        let i_hi = rows.end / n;
        effects::read(a, i_lo * k..i_hi * k);
        effects::read(&bp, 0..bp.len());
        gemm_rows_packed(a, &bp, out_block, i_lo..i_hi, k, n);
    });
}

/// Number of `NR`-column strips covering `n` columns.
fn n_strips(n: usize) -> usize {
    n.div_ceil(NR)
}

/// Packs `b[k, n]` into `KC`-deep, `NR`-wide column strips.
///
/// Layout: k-panels in ascending order; within a panel of depth `lp`, strip
/// `s` occupies `lp * NR` contiguous floats at offset
/// `panel_base + s * lp * NR`, with element `(kk, j)` at `kk * NR + j`.
/// Columns beyond `n` in the last strip are zero; the microkernel's padded
/// lanes compute into discarded scratch, so the padding never reaches live
/// output.
fn pack_b(b: &[f32], k: usize, n: usize) -> Vec<f32> {
    let strips = n_strips(n);
    let mut bp = vec![0.0f32; k * strips * NR];
    let _scope = effects::kernel_scope("gemm_pack_b");
    let mut panel_base = 0;
    for kc0 in (0..k).step_by(KC) {
        let lp = (kc0 + KC).min(k) - kc0;
        let panel = &mut bp[panel_base..panel_base + lp * strips * NR];
        // One strip per chunk: each strip is written by exactly one thread
        // and reads its own column band of `b`.
        aibench_parallel::parallel_slice_mut(panel, lp * NR, |range, strip| {
            let s = range.start / (lp * NR);
            let j0 = s * NR;
            effects::read(b, kc0 * n..(kc0 + lp) * n);
            let cols = NR.min(n - j0);
            for kk in 0..lp {
                let src = &b[(kc0 + kk) * n + j0..(kc0 + kk) * n + j0 + cols];
                strip[kk * NR..kk * NR + cols].copy_from_slice(src);
            }
        });
        panel_base += lp * strips * NR;
    }
    bp
}

/// Packs the rows `i_lo..i_hi` of `a[., k]`, k-panel `kc0..kc0+lp`, into
/// `MR`-row tiles: tile `t` occupies `lp * MR` floats with element
/// `(kk, r)` at `kk * MR + r`. Rows beyond `i_hi` are zero (discarded by
/// the microkernel's row masking).
fn pack_a_panel(
    a: &[f32],
    ap: &mut [f32],
    i_range: std::ops::Range<usize>,
    k: usize,
    kc0: usize,
    lp: usize,
) {
    let (i_lo, i_hi) = (i_range.start, i_range.end);
    let tiles = (i_hi - i_lo).div_ceil(MR);
    for t in 0..tiles {
        let tile = &mut ap[t * lp * MR..(t + 1) * lp * MR];
        for r in 0..MR {
            let i = i_lo + t * MR + r;
            if i < i_hi {
                let row = &a[i * k + kc0..i * k + kc0 + lp];
                for (kk, &v) in row.iter().enumerate() {
                    tile[kk * MR + r] = v;
                }
            } else {
                for kk in 0..lp {
                    tile[kk * MR + r] = 0.0;
                }
            }
        }
    }
}

/// Serial packed GEMM over one row block: packs each A panel locally, then
/// sweeps every B strip with the register microkernel.
fn gemm_rows_packed(
    a: &[f32],
    bp: &[f32],
    out_block: &mut [f32],
    i_range: std::ops::Range<usize>,
    k: usize,
    n: usize,
) {
    let (i_lo, i_hi) = (i_range.start, i_range.end);
    let rows = i_hi - i_lo;
    let tiles = rows.div_ceil(MR);
    let strips = n_strips(n);
    let mut ap = vec![0.0f32; tiles * MR * KC.min(k.max(1))];
    let mut panel_base = 0;
    for kc0 in (0..k).step_by(KC) {
        let lp = (kc0 + KC).min(k) - kc0;
        pack_a_panel(a, &mut ap, i_lo..i_hi, k, kc0, lp);
        for s in 0..strips {
            let j0 = s * NR;
            let cols = NR.min(n - j0);
            let bs = &bp[panel_base + s * lp * NR..panel_base + (s + 1) * lp * NR];
            for t in 0..tiles {
                let at = &ap[t * lp * MR..(t + 1) * lp * MR];
                let r0 = t * MR;
                let live_rows = MR.min(rows - r0);
                // Load the live C cells into the accumulator tile, run the
                // microkernel over the whole (possibly padded) tile, and
                // store only the live cells back. Padded cells accumulate
                // zero-products into scratch that is simply discarded.
                let mut acc = [[0.0f32; NR]; MR];
                for (r, acc_row) in acc.iter_mut().enumerate().take(live_rows) {
                    let c_row = &out_block[(r0 + r) * n + j0..(r0 + r) * n + j0 + cols];
                    acc_row[..cols].copy_from_slice(c_row);
                }
                micro_tile(at, bs, lp, &mut acc);
                for (r, acc_row) in acc.iter().enumerate().take(live_rows) {
                    let c_row = &mut out_block[(r0 + r) * n + j0..(r0 + r) * n + j0 + cols];
                    c_row.copy_from_slice(&acc_row[..cols]);
                }
            }
        }
        panel_base += lp * strips * NR;
    }
}

/// The `MR x NR` register microkernel: `acc += A-tile * B-strip` over one
/// k-panel, each accumulator updated once per `kk` in ascending order
/// (scalar build; autovectorizes over the `NR` lane loop).
#[cfg(not(feature = "simd"))]
#[inline]
fn micro_tile(at: &[f32], bs: &[f32], lp: usize, acc: &mut [[f32; NR]; MR]) {
    for kk in 0..lp {
        let b: &[f32] = &bs[kk * NR..kk * NR + NR];
        let a: &[f32] = &at[kk * MR..kk * MR + MR];
        for r in 0..MR {
            let av = a[r];
            for j in 0..NR {
                acc[r][j] += av * b[j];
            }
        }
    }
}

/// The `MR x NR` register microkernel, explicit `std::simd` build: one
/// 8-lane vector per accumulator row, lanes mapping one-to-one onto the
/// `NR` columns, so every element performs the same scalar `mul`/`add`
/// sequence as the autovectorized build (bitwise-identical results).
#[cfg(feature = "simd")]
#[inline]
fn micro_tile(at: &[f32], bs: &[f32], lp: usize, acc: &mut [[f32; NR]; MR]) {
    use std::simd::Simd;
    let mut v: [Simd<f32, NR>; MR] = [
        Simd::from_array(acc[0]),
        Simd::from_array(acc[1]),
        Simd::from_array(acc[2]),
        Simd::from_array(acc[3]),
    ];
    for kk in 0..lp {
        let b: Simd<f32, NR> = Simd::from_slice(&bs[kk * NR..kk * NR + NR]);
        let a = &at[kk * MR..kk * MR + MR];
        for r in 0..MR {
            v[r] += Simd::splat(a[r]) * b;
        }
    }
    for r in 0..MR {
        acc[r] = v[r].to_array();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive `k`-ascending reference with identical per-element order.
    fn gemm_naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for kk in 0..k {
                let av = a[i * k + kk];
                for j in 0..n {
                    out[i * n + j] += av * b[kk * n + j];
                }
            }
        }
        out
    }

    fn fill(seed: u64, len: usize) -> Vec<f32> {
        let mut rng = crate::Rng::seed_from(seed);
        (0..len).map(|_| rng.normal()).collect()
    }

    #[test]
    fn packed_is_bitwise_equal_to_naive() {
        for &(m, k, n) in &[
            (1, 1, 8),
            (4, 300, 8),
            (5, 7, 9),
            (33, 257, 65),
            (64, 512, 40),
            (130, 70, 130),
        ] {
            let a = fill(m as u64 * 31 + n as u64, m * k);
            let b = fill(k as u64 * 17 + 1, k * n);
            let want = gemm_naive(&a, &b, m, k, n);
            let mut got = vec![0.0f32; m * n];
            gemm_packed(&a, &b, &mut got, m, k, n);
            assert!(
                got.iter()
                    .zip(&want)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "packed != naive at ({m},{k},{n})"
            );
            let mut tiled = vec![0.0f32; m * n];
            gemm_tiled(&a, &b, &mut tiled, m, k, n);
            assert!(
                tiled
                    .iter()
                    .zip(&want)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "tiled != naive at ({m},{k},{n})"
            );
            let mut small = vec![0.0f32; m * n];
            gemm_small(&a, &b, &mut small, m, k, n);
            assert!(
                small
                    .iter()
                    .zip(&want)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "small != naive at ({m},{k},{n})"
            );
        }
    }

    #[test]
    fn path_toggle_round_trips() {
        assert_eq!(gemm_path(), GemmPath::Blocked);
        set_gemm_path(GemmPath::Scalar);
        assert_eq!(gemm_path(), GemmPath::Scalar);
        set_gemm_path(GemmPath::Blocked);
        assert_eq!(gemm_path(), GemmPath::Blocked);
    }

    #[test]
    fn zero_size_edges_are_no_ops() {
        let mut out: Vec<f32> = Vec::new();
        gemm_packed(&[], &[], &mut out, 0, 0, 0);
        gemm_tiled(&[], &[], &mut out, 0, 0, 0);
        gemm_small(&[], &[], &mut out, 0, 0, 0);
        let mut out = vec![0.0f32; 3];
        gemm_tiled(&[], &[], &mut out, 1, 0, 3);
        assert_eq!(out, vec![0.0; 3]);
        let mut out = vec![0.0f32; 3];
        gemm_small(&[], &[], &mut out, 1, 0, 3);
        assert_eq!(out, vec![0.0; 3]);
    }
}

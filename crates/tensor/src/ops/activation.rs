//! Numerically stable softmax family over the last axis.
//!
//! Both kernels parallelize over contiguous blocks of rows; every row is
//! normalized by exactly one thread in serial order, so results are bitwise
//! identical for every `AIBENCH_THREADS` value.

use aibench_parallel::effects;

use crate::Tensor;

/// Rows handed to one worker at a time. Softmax rows are cheap, so chunks
/// amortize scheduling; sized so a block of typical classifier rows
/// (~10-1000 floats) stays around the elementwise chunk grain.
const ROW_BLOCK: usize = 64;

/// Softmax over the last axis, numerically stabilized by row-max
/// subtraction.
///
/// # Panics
///
/// Panics if the tensor is 0-dimensional.
///
/// # Example
///
/// ```
/// use aibench_tensor::{ops::softmax_last, Tensor};
/// let p = softmax_last(&Tensor::from_vec(vec![1.0, 1.0], &[2]));
/// assert!((p.data()[0] - 0.5).abs() < 1e-6);
/// ```
pub fn softmax_last(x: &Tensor) -> Tensor {
    assert!(x.ndim() >= 1, "softmax_last on scalar");
    let inner = *x.shape().last().unwrap();
    let data = x.data();
    let mut out = Tensor::zeros(x.shape());
    let _scope = effects::kernel_scope("softmax");
    aibench_parallel::parallel_slice_mut(
        out.data_mut(),
        ROW_BLOCK * inner.max(1),
        |range, block| {
            effects::read(data, range.clone());
            for (row, dst) in data[range]
                .chunks(inner.max(1))
                .zip(block.chunks_mut(inner.max(1)))
            {
                let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let mut z = 0.0;
                for (d, &v) in dst.iter_mut().zip(row) {
                    let e = (v - m).exp();
                    *d = e;
                    z += e;
                }
                let inv = 1.0 / z;
                for d in dst.iter_mut() {
                    *d *= inv;
                }
            }
        },
    );
    out
}

/// Log-softmax over the last axis.
///
/// # Panics
///
/// Panics if the tensor is 0-dimensional.
pub fn log_softmax_last(x: &Tensor) -> Tensor {
    assert!(x.ndim() >= 1, "log_softmax_last on scalar");
    let inner = *x.shape().last().unwrap();
    let data = x.data();
    let mut out = Tensor::zeros(x.shape());
    let _scope = effects::kernel_scope("log_softmax");
    aibench_parallel::parallel_slice_mut(
        out.data_mut(),
        ROW_BLOCK * inner.max(1),
        |range, block| {
            effects::read(data, range.clone());
            for (row, dst) in data[range]
                .chunks(inner.max(1))
                .zip(block.chunks_mut(inner.max(1)))
            {
                let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let z: f32 = row.iter().map(|&v| (v - m).exp()).sum();
                let log_z = z.ln() + m;
                for (d, &v) in dst.iter_mut().zip(row) {
                    *d = v - log_z;
                }
            }
        },
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_sum_to_one() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let p = softmax_last(&x);
        for o in 0..2 {
            let s: f32 = p.data()[o * 3..(o + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn stable_for_large_logits() {
        let x = Tensor::from_vec(vec![1000.0, 1001.0], &[2]);
        let p = softmax_last(&x);
        assert!(p.all_finite());
        assert!((p.data()[0] + p.data()[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let x = Tensor::from_vec(vec![0.3, -1.2, 2.0, 0.0], &[2, 2]);
        let p = softmax_last(&x);
        let lp = log_softmax_last(&x);
        for (a, b) in p.data().iter().zip(lp.data()) {
            assert!((a.ln() - b).abs() < 1e-5);
        }
    }

    #[test]
    fn uniform_logits_give_uniform_probs() {
        let x = Tensor::zeros(&[1, 5]);
        let p = softmax_last(&x);
        assert!(p.data().iter().all(|&v| (v - 0.2).abs() < 1e-6));
    }
}

//! The dense `f32` tensor type.

use std::fmt;

use crate::rng::Rng;
use crate::shape::{broadcast_shapes, broadcast_strides, row_major_strides};

/// A dense, row-major (C-order), contiguous `f32` tensor.
///
/// Tensors are the value type flowing through the autograd tape, the neural
/// network layers, and the benchmark metrics. They are plain data: cloning
/// copies the buffer, and all operations produce new tensors unless suffixed
/// `_inplace`.
///
/// Shape-mismatch misuse is a programming error, so shape checks panic with
/// descriptive messages (documented per method) rather than returning
/// `Result`, mirroring the convention of mainstream numeric libraries.
///
/// # Example
///
/// ```
/// use aibench_tensor::Tensor;
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let b = a.add(&a).scale(0.5);
/// assert_eq!(b.data(), a.data());
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; shape.iter().product()],
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; shape.iter().product()],
        }
    }

    /// Creates a 0-dimensional (scalar) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: vec![],
            data: vec![value],
        }
    }

    /// Creates a tensor from a flat buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let expected: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            expected,
            "from_vec: buffer of {} elements does not fit shape {:?} ({} elements)",
            data.len(),
            shape,
            expected
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Creates a tensor by calling `f` with each flat index.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let n: usize = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: (0..n).map(&mut f).collect(),
        }
    }

    /// Creates a 1-D tensor `[0, 1, ..., n-1]`.
    pub fn arange(n: usize) -> Self {
        Tensor::from_fn(&[n], |i| i as f32)
    }

    /// Creates a tensor of i.i.d. standard normal samples.
    pub fn randn(shape: &[usize], rng: &mut Rng) -> Self {
        Tensor::from_fn(shape, |_| rng.normal())
    }

    /// Creates a tensor of i.i.d. uniform samples in `[lo, hi)`.
    pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut Rng) -> Self {
        Tensor::from_fn(shape, |_| rng.uniform_in(lo, hi))
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The dimensions, outermost first. A scalar has shape `&[]`.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The flat data buffer, row-major.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the flat data buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Extracts the single element of a one-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.data.len(),
            1,
            "item() on tensor with {} elements",
            self.data.len()
        );
        self.data[0]
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` has the wrong rank or is out of bounds.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.flat_index(idx)]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` has the wrong rank or is out of bounds.
    pub fn set(&mut self, idx: &[usize], value: f32) {
        let i = self.flat_index(idx);
        self.data[i] = value;
    }

    fn flat_index(&self, idx: &[usize]) -> usize {
        assert_eq!(
            idx.len(),
            self.shape.len(),
            "index rank {} vs tensor rank {}",
            idx.len(),
            self.shape.len()
        );
        let strides = row_major_strides(&self.shape);
        let mut flat = 0;
        for (d, (&i, &s)) in idx.iter().zip(&strides).enumerate() {
            assert!(
                i < self.shape[d],
                "index {} out of bounds for dim {} of extent {}",
                i,
                d,
                self.shape[d]
            );
            flat += i * s;
        }
        flat
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        let expected: usize = shape.iter().product();
        assert_eq!(
            self.data.len(),
            expected,
            "reshape: {:?} -> {:?} changes element count",
            self.shape,
            shape
        );
        Tensor {
            shape: shape.to_vec(),
            data: self.data.clone(),
        }
    }

    /// Flattens to 1-D.
    pub fn flatten(&self) -> Tensor {
        Tensor {
            shape: vec![self.data.len()],
            data: self.data.clone(),
        }
    }

    /// Transposes a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn t(&self) -> Tensor {
        assert_eq!(
            self.ndim(),
            2,
            "t() requires a 2-D tensor, got {:?}",
            self.shape
        );
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        out
    }

    /// Permutes dimensions: `perm[i]` is the source axis for output axis `i`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..ndim`.
    pub fn permute(&self, perm: &[usize]) -> Tensor {
        assert_eq!(perm.len(), self.ndim(), "permute rank mismatch");
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            assert!(
                p < perm.len() && !seen[p],
                "permute: {:?} is not a permutation",
                perm
            );
            seen[p] = true;
        }
        let out_shape: Vec<usize> = perm.iter().map(|&p| self.shape[p]).collect();
        let in_strides = row_major_strides(&self.shape);
        let out_strides = row_major_strides(&out_shape);
        let mut out = Tensor::zeros(&out_shape);
        let n = self.data.len();
        for flat_out in 0..n {
            let mut rem = flat_out;
            let mut flat_in = 0;
            for d in 0..perm.len() {
                let coord = rem / out_strides[d];
                rem %= out_strides[d];
                flat_in += coord * in_strides[perm[d]];
            }
            out.data[flat_out] = self.data[flat_in];
        }
        out
    }

    // ------------------------------------------------------------------
    // Elementwise, maps, and broadcasting binaries
    // ------------------------------------------------------------------

    /// Applies `f` elementwise.
    ///
    /// Runs multi-threaded over contiguous chunks for large tensors; each
    /// element is mapped independently, so the result never depends on the
    /// thread count.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let mut data = vec![0.0f32; self.data.len()];
        let _scope = aibench_parallel::effects::kernel_scope("tensor_map");
        aibench_parallel::parallel_slice_mut(
            &mut data,
            aibench_parallel::ELEMWISE_CHUNK,
            |range, out| {
                aibench_parallel::effects::read(&self.data, range.clone());
                for (o, &x) in out.iter_mut().zip(&self.data[range]) {
                    *o = f(x);
                }
            },
        );
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        let _scope = aibench_parallel::effects::kernel_scope("tensor_map_inplace");
        aibench_parallel::parallel_slice_mut(
            &mut self.data,
            aibench_parallel::ELEMWISE_CHUNK,
            |_, chunk| {
                for x in chunk {
                    *x = f(*x);
                }
            },
        );
    }

    /// Broadcasting binary operation.
    ///
    /// The same-shape fast path runs multi-threaded over contiguous chunks;
    /// the general broadcasting path is serial (it is only hit for small
    /// bias/scale operands in practice).
    ///
    /// # Panics
    ///
    /// Panics if the shapes do not broadcast.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
        if self.shape == other.shape {
            let mut data = vec![0.0f32; self.data.len()];
            let _scope = aibench_parallel::effects::kernel_scope("tensor_zip");
            aibench_parallel::parallel_slice_mut(
                &mut data,
                aibench_parallel::ELEMWISE_CHUNK,
                |range, out| {
                    aibench_parallel::effects::read(&self.data, range.clone());
                    aibench_parallel::effects::read(&other.data, range.clone());
                    for ((o, &a), &b) in out
                        .iter_mut()
                        .zip(&self.data[range.clone()])
                        .zip(&other.data[range])
                    {
                        *o = f(a, b);
                    }
                },
            );
            return Tensor {
                shape: self.shape.clone(),
                data,
            };
        }
        let out_shape = broadcast_shapes(&self.shape, &other.shape).unwrap_or_else(|| {
            panic!(
                "shapes {:?} and {:?} do not broadcast",
                self.shape, other.shape
            )
        });
        let sa = broadcast_strides(&self.shape, &out_shape);
        let sb = broadcast_strides(&other.shape, &out_shape);
        let out_strides = row_major_strides(&out_shape);
        let n: usize = out_shape.iter().product();
        let mut data = Vec::with_capacity(n);
        for flat in 0..n {
            let mut rem = flat;
            let (mut ia, mut ib) = (0, 0);
            for d in 0..out_shape.len() {
                let coord = rem / out_strides[d];
                rem %= out_strides[d];
                ia += coord * sa[d];
                ib += coord * sb[d];
            }
            data.push(f(self.data[ia], other.data[ib]));
        }
        Tensor {
            shape: out_shape,
            data,
        }
    }

    /// Elementwise (broadcasting) addition.
    ///
    /// # Panics
    ///
    /// Panics if the shapes do not broadcast.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise (broadcasting) subtraction.
    ///
    /// # Panics
    ///
    /// Panics if the shapes do not broadcast.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise (broadcasting) multiplication.
    ///
    /// # Panics
    ///
    /// Panics if the shapes do not broadcast.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// Elementwise (broadcasting) division.
    ///
    /// # Panics
    ///
    /// Panics if the shapes do not broadcast.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a / b)
    }

    /// Elementwise maximum with broadcasting.
    ///
    /// # Panics
    ///
    /// Panics if the shapes do not broadcast.
    pub fn maximum(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a.max(b))
    }

    /// Multiplies every element by `c`.
    pub fn scale(&self, c: f32) -> Tensor {
        self.map(|x| x * c)
    }

    /// Adds `c` to every element.
    pub fn add_scalar(&self, c: f32) -> Tensor {
        self.map(|x| x + c)
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Tensor {
        self.map(|x| -x)
    }

    /// In-place `self += alpha * other` (same shape only; no broadcasting).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_scaled_inplace(&mut self, other: &Tensor, alpha: f32) {
        assert_eq!(self.shape, other.shape, "add_scaled_inplace shape mismatch");
        let _scope = aibench_parallel::effects::kernel_scope("add_scaled");
        aibench_parallel::parallel_slice_mut(
            &mut self.data,
            aibench_parallel::ELEMWISE_CHUNK,
            |range, chunk| {
                aibench_parallel::effects::read(&other.data, range.clone());
                for (a, &b) in chunk.iter_mut().zip(&other.data[range]) {
                    *a += alpha * b;
                }
            },
        );
    }

    /// Reduces this tensor (by summation) down to `target` shape, inverting a
    /// broadcast. Used by autograd to fold gradients of broadcast operands.
    ///
    /// # Panics
    ///
    /// Panics if `target` does not broadcast to `self.shape()`.
    pub fn sum_to(&self, target: &[usize]) -> Tensor {
        if self.shape == target {
            return self.clone();
        }
        let check = broadcast_shapes(target, &self.shape);
        assert_eq!(
            check.as_deref(),
            Some(&self.shape[..]),
            "sum_to: {:?} is not a broadcast source of {:?}",
            target,
            self.shape
        );
        let st = broadcast_strides(target, &self.shape);
        let self_strides = row_major_strides(&self.shape);
        let mut out = Tensor::zeros(target);
        for flat in 0..self.data.len() {
            let mut rem = flat;
            let mut it = 0;
            for d in 0..self.shape.len() {
                let coord = rem / self_strides[d];
                rem %= self_strides[d];
                it += coord * st[d];
            }
            out.data[it] += self.data[flat];
        }
        out
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements.
    ///
    /// Accumulated in fixed [`aibench_parallel::REDUCE_CHUNK`]-sized blocks
    /// folded in ascending order, so the result is bitwise identical for
    /// every `AIBENCH_THREADS` value (including 1).
    pub fn sum(&self) -> f32 {
        let _scope = aibench_parallel::effects::kernel_scope("tensor_sum");
        aibench_parallel::sum_f32(&self.data)
    }

    /// Mean of all elements.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn mean(&self) -> f32 {
        assert!(!self.data.is_empty(), "mean of empty tensor");
        self.sum() / self.data.len() as f32
    }

    /// Maximum element.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn max_val(&self) -> f32 {
        assert!(!self.data.is_empty(), "max of empty tensor");
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn min_val(&self) -> f32 {
        assert!(!self.data.is_empty(), "min of empty tensor");
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Sums along `axis`, removing it.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= ndim`.
    pub fn sum_axis(&self, axis: usize) -> Tensor {
        assert!(
            axis < self.ndim(),
            "sum_axis: axis {} out of range for rank {}",
            axis,
            self.ndim()
        );
        let mut out_shape = self.shape.clone();
        out_shape.remove(axis);
        let outer: usize = self.shape[..axis].iter().product();
        let mid = self.shape[axis];
        let inner: usize = self.shape[axis + 1..].iter().product();
        let mut out = Tensor::zeros(&out_shape);
        for o in 0..outer {
            for m in 0..mid {
                for i in 0..inner {
                    out.data[o * inner + i] += self.data[(o * mid + m) * inner + i];
                }
            }
        }
        out
    }

    /// Means along `axis`, removing it.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= ndim` or the axis has zero extent.
    pub fn mean_axis(&self, axis: usize) -> Tensor {
        let n = self.shape[axis];
        assert!(n > 0, "mean_axis over empty axis");
        self.sum_axis(axis).scale(1.0 / n as f32)
    }

    /// Argmax over the last axis; returns indices of shape `shape[..-1]`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is 0-dimensional.
    pub fn argmax_last(&self) -> Vec<usize> {
        assert!(self.ndim() >= 1, "argmax_last on scalar");
        let inner = *self.shape.last().unwrap();
        let outer = self.data.len() / inner.max(1);
        let mut out = Vec::with_capacity(outer);
        for o in 0..outer {
            let row = &self.data[o * inner..(o + 1) * inner];
            let mut best = 0;
            for (i, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = i;
                }
            }
            out.push(best);
        }
        out
    }

    /// Matrix product of two 2-D tensors (see [`crate::ops::matmul`]).
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        crate::ops::matmul(self, other)
    }

    /// Squared L2 norm of all elements.
    ///
    /// Uses the same order-stable chunked accumulation as [`Tensor::sum`],
    /// so the result does not depend on the thread count.
    pub fn sq_norm(&self) -> f32 {
        let _scope = aibench_parallel::effects::kernel_scope("tensor_sq_norm");
        aibench_parallel::sum_map_f32(&self.data, |x| x * x)
    }

    /// True if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Maximum absolute difference against another tensor of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "max_abs_diff shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, " {:?}", self.data)
        } else {
            write!(
                f,
                " [{:.4}, {:.4}, ... {:.4}]",
                self.data[0],
                self.data[1],
                self.data[self.data.len() - 1]
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_index() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.at(&[0, 0]), 1.0);
        assert_eq!(t.at(&[1, 2]), 6.0);
    }

    #[test]
    #[should_panic(expected = "does not fit shape")]
    fn from_vec_wrong_len_panics() {
        let _ = Tensor::from_vec(vec![1.0], &[2, 2]);
    }

    #[test]
    fn broadcast_add_row() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[3]);
        let c = a.add(&b);
        assert_eq!(c.data(), &[11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
    }

    #[test]
    fn broadcast_mul_col() {
        let a = Tensor::ones(&[2, 3]);
        let b = Tensor::from_vec(vec![2.0, 3.0], &[2, 1]);
        let c = a.mul(&b);
        assert_eq!(c.data(), &[2.0, 2.0, 2.0, 3.0, 3.0, 3.0]);
    }

    #[test]
    fn sum_to_inverts_broadcast() {
        let g = Tensor::ones(&[2, 3]);
        let r = g.sum_to(&[3]);
        assert_eq!(r.data(), &[2.0, 2.0, 2.0]);
        let r2 = g.sum_to(&[2, 1]);
        assert_eq!(r2.data(), &[3.0, 3.0]);
    }

    #[test]
    fn transpose_2d() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let at = a.t();
        assert_eq!(at.shape(), &[3, 2]);
        assert_eq!(at.at(&[2, 1]), 6.0);
    }

    #[test]
    fn permute_roundtrip() {
        let mut rng = Rng::seed_from(1);
        let a = Tensor::randn(&[2, 3, 4], &mut rng);
        let p = a.permute(&[2, 0, 1]);
        assert_eq!(p.shape(), &[4, 2, 3]);
        let back = p.permute(&[1, 2, 0]);
        assert_eq!(back, a);
    }

    #[test]
    fn sum_axis_middle() {
        let a = Tensor::from_fn(&[2, 3, 2], |i| i as f32);
        let s = a.sum_axis(1);
        assert_eq!(s.shape(), &[2, 2]);
        // [[0+2+4, 1+3+5], [6+8+10, 7+9+11]]
        assert_eq!(s.data(), &[6.0, 9.0, 24.0, 27.0]);
    }

    #[test]
    fn argmax_last_rows() {
        let a = Tensor::from_vec(vec![0.1, 0.9, 0.0, 0.7, 0.2, 0.1], &[2, 3]);
        assert_eq!(a.argmax_last(), vec![1, 0]);
    }

    #[test]
    fn mean_and_norms() {
        let a = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        assert_eq!(a.mean(), 3.5);
        assert_eq!(a.sq_norm(), 25.0);
    }

    #[test]
    #[should_panic(expected = "do not broadcast")]
    fn incompatible_broadcast_panics() {
        let a = Tensor::ones(&[2, 3]);
        let b = Tensor::ones(&[4, 3]);
        let _ = a.add(&b);
    }
}

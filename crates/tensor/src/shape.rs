//! Shape algebra: dimension bookkeeping and NumPy-style broadcasting rules.

use std::fmt;

/// A tensor shape: the extent of each dimension, outermost first.
///
/// `Shape` is a thin newtype over `Vec<usize>` used where shape-level
/// reasoning (broadcasting, stride computation) is needed; the [`Tensor`]
/// type stores its dimensions directly.
///
/// [`Tensor`]: crate::Tensor
///
/// # Example
///
/// ```
/// use aibench_tensor::Shape;
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from explicit dimensions.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape(dims)
    }

    /// The dimensions, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of dimensions; 1 for scalars).
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// Whether the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        row_major_strides(&self.0)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

/// Row-major (C-order) strides for the given dimensions.
pub(crate) fn row_major_strides(dims: &[usize]) -> Vec<usize> {
    let mut strides = vec![1; dims.len()];
    for i in (0..dims.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * dims[i + 1];
    }
    strides
}

/// Computes the broadcast result shape of two shapes under NumPy rules, or
/// `None` if they are incompatible.
///
/// Dimensions are aligned from the right; a dimension broadcasts when it is
/// `1` or equal to its counterpart.
///
/// # Example
///
/// ```
/// use aibench_tensor::broadcast_shapes;
/// assert_eq!(broadcast_shapes(&[4, 1, 3], &[2, 3]), Some(vec![4, 2, 3]));
/// assert_eq!(broadcast_shapes(&[2, 3], &[4, 3]), None);
/// ```
pub fn broadcast_shapes(a: &[usize], b: &[usize]) -> Option<Vec<usize>> {
    let ndim = a.len().max(b.len());
    let mut out = vec![0; ndim];
    for i in 0..ndim {
        let da = if i < ndim - a.len() {
            1
        } else {
            a[i - (ndim - a.len())]
        };
        let db = if i < ndim - b.len() {
            1
        } else {
            b[i - (ndim - b.len())]
        };
        out[i] = if da == db {
            da
        } else if da == 1 {
            db
        } else if db == 1 {
            da
        } else {
            return None;
        };
    }
    Some(out)
}

/// Strides for iterating a tensor of shape `dims` as if broadcast to
/// `target` (stride 0 on broadcast dimensions).
pub(crate) fn broadcast_strides(dims: &[usize], target: &[usize]) -> Vec<usize> {
    let strides = row_major_strides(dims);
    let offset = target.len() - dims.len();
    let mut out = vec![0; target.len()];
    for i in 0..dims.len() {
        out[offset + i] = if dims[i] == 1 && target[offset + i] != 1 {
            0
        } else {
            strides[i]
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(row_major_strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(row_major_strides(&[5]), vec![1]);
        assert_eq!(row_major_strides(&[]), Vec::<usize>::new());
    }

    #[test]
    fn broadcast_equal_shapes() {
        assert_eq!(broadcast_shapes(&[2, 3], &[2, 3]), Some(vec![2, 3]));
    }

    #[test]
    fn broadcast_scalar() {
        assert_eq!(broadcast_shapes(&[2, 3], &[]), Some(vec![2, 3]));
        assert_eq!(broadcast_shapes(&[], &[2, 3]), Some(vec![2, 3]));
    }

    #[test]
    fn broadcast_ones_expand() {
        assert_eq!(broadcast_shapes(&[1, 3], &[2, 1]), Some(vec![2, 3]));
        assert_eq!(broadcast_shapes(&[4, 1, 3], &[2, 3]), Some(vec![4, 2, 3]));
    }

    #[test]
    fn broadcast_incompatible() {
        assert_eq!(broadcast_shapes(&[2, 3], &[4, 3]), None);
        assert_eq!(broadcast_shapes(&[2], &[3]), None);
    }

    #[test]
    fn broadcast_strides_zero_on_expanded() {
        assert_eq!(broadcast_strides(&[1, 3], &[2, 3]), vec![0, 1]);
        assert_eq!(broadcast_strides(&[3], &[2, 3]), vec![0, 1]);
    }

    #[test]
    fn shape_display() {
        assert_eq!(Shape::new(vec![2, 3]).to_string(), "[2, 3]");
    }
}

//! Dense `f32` tensors and the numeric kernels used throughout the AIBench
//! training-suite reproduction.
//!
//! This crate is the lowest layer of the workspace: a small, dependency-free
//! tensor library with row-major contiguous storage, NumPy-style
//! broadcasting, blocked matrix multiplication, im2col convolution, pooling,
//! reductions, and a deterministic pseudo-random number generator. Everything
//! above it — the autograd tape, the neural-network layers, the seventeen
//! AIBench component benchmarks — is built from these primitives.
//!
//! # Example
//!
//! ```
//! use aibench_tensor::{Tensor, Rng};
//!
//! let mut rng = Rng::seed_from(42);
//! let a = Tensor::randn(&[2, 3], &mut rng);
//! let b = Tensor::randn(&[3, 4], &mut rng);
//! let c = a.matmul(&b);
//! assert_eq!(c.shape(), &[2, 4]);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(feature = "simd", feature(portable_simd))]

mod ckpt;
mod rng;
mod shape;
mod tensor;

pub mod ops;

pub use rng::{Rng, RngState};
pub use shape::{broadcast_shapes, Shape};
pub use tensor::Tensor;

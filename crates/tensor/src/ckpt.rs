//! [`Snapshot`]/[`Restore`] implementations for the tensor layer.

use aibench_ckpt::{key, CkptError, Restore, Snapshot, State};

use crate::rng::{Rng, RngState};
use crate::tensor::Tensor;

impl Snapshot for Tensor {
    /// Saves the tensor as `{prefix}` itself: one shaped `f32` entry.
    fn snapshot(&self, state: &mut State, prefix: &str) {
        state.put_f32s(prefix, self.shape(), self.data().to_vec());
    }
}

impl Restore for Tensor {
    /// Restores data in place; the snapshot's shape must match the
    /// tensor's (restore replaces values, it does not reshape).
    fn restore(&mut self, state: &State, prefix: &str) -> Result<(), CkptError> {
        let (shape, data) = state.f32s(prefix)?;
        if shape != self.shape() {
            return Err(CkptError::ShapeMismatch {
                key: prefix.to_string(),
                expected: self.shape().to_vec(),
                found: shape.to_vec(),
            });
        }
        self.data_mut().copy_from_slice(data);
        Ok(())
    }
}

impl Snapshot for Rng {
    /// Saves `{prefix}.state` and, when present, `{prefix}.gauss_spare`
    /// (as raw `f32` bits so NaN-free exactness is moot — the bits are the
    /// value).
    fn snapshot(&self, state: &mut State, prefix: &str) {
        let s = self.state();
        state.put_u64(key(prefix, "state"), s.state);
        state.put_bool(key(prefix, "has_spare"), s.gauss_spare.is_some());
        state.put_f32(key(prefix, "gauss_spare"), s.gauss_spare.unwrap_or(0.0));
    }
}

impl Restore for Rng {
    fn restore(&mut self, state: &State, prefix: &str) -> Result<(), CkptError> {
        let word = state.u64(&key(prefix, "state"))?;
        let has_spare = state.bool(&key(prefix, "has_spare"))?;
        let spare = state.f32(&key(prefix, "gauss_spare"))?;
        *self = Rng::from_state(RngState {
            state: word,
            gauss_spare: has_spare.then_some(spare),
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_round_trip_is_bit_exact() {
        let mut rng = Rng::seed_from(3);
        let original = Tensor::randn(&[3, 4], &mut rng);
        let mut state = State::new();
        original.snapshot(&mut state, "w");
        let mut dest = Tensor::zeros(&[3, 4]);
        dest.restore(&state, "w").unwrap();
        assert_eq!(
            original
                .data()
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>(),
            dest.data().iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn tensor_restore_rejects_shape_mismatch() {
        let original = Tensor::ones(&[2, 2]);
        let mut state = State::new();
        original.snapshot(&mut state, "w");
        let mut dest = Tensor::zeros(&[4]);
        assert!(matches!(
            dest.restore(&state, "w"),
            Err(CkptError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn rng_round_trip_preserves_the_stream() {
        let mut rng = Rng::seed_from(9);
        let _ = rng.normal(); // leave a spare pending
        let mut state = State::new();
        rng.snapshot(&mut state, "rng");
        let mut restored = Rng::seed_from(0);
        restored.restore(&state, "rng").unwrap();
        for _ in 0..50 {
            assert_eq!(rng.normal().to_bits(), restored.normal().to_bits());
        }
    }
}

//! Deterministic pseudo-random number generation.
//!
//! The whole reproduction must be bit-reproducible given a seed, so every
//! stochastic component (weight init, data synthesis, dropout, sampling)
//! draws from this xorshift64*-based generator rather than from OS entropy.

/// A deterministic xorshift64* pseudo-random number generator.
///
/// Fast, tiny-state, and good enough statistically for weight initialization
/// and synthetic data generation. Not cryptographically secure.
///
/// # Example
///
/// ```
/// use aibench_tensor::Rng;
/// let mut rng = Rng::seed_from(7);
/// let x = rng.uniform();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Rng {
    state: u64,
    /// Cached second output of the Box-Muller transform.
    gauss_spare: Option<f32>,
}

impl Rng {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    pub fn seed_from(seed: u64) -> Self {
        // Avoid the all-zero state, which is a fixed point of xorshift.
        let state = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0x2545_F491_4F6C_DD1D)
            | 1;
        Rng {
            state,
            gauss_spare: None,
        }
    }

    /// Returns the next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        // Every draw funnels through here; under the audit sanitizer this
        // flags draws made from inside a parallel region, where a shared
        // generator's stream order would depend on chunk scheduling.
        aibench_parallel::effects::note_rng_draw();
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Returns a uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        // Use the top 24 bits for a clean f32 mantissa.
        ((self.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }

    /// Returns a uniform sample in `[lo, hi)`.
    pub fn uniform_in(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform()
    }

    /// Returns a standard normal sample (Box-Muller).
    pub fn normal(&mut self) -> f32 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Rejection-free polar-less Box-Muller.
        let mut u1 = self.uniform();
        if u1 < 1e-12 {
            u1 = 1e-12;
        }
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Returns a normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal()
    }

    /// Returns a uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "Rng::below requires n > 0");
        (self.next_u64() % n as u64) as usize
    }

    /// Returns `true` with probability `p`.
    pub fn bernoulli(&mut self, p: f32) -> bool {
        self.uniform() < p
    }

    /// Shuffles a slice in place (Fisher-Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Returns a random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        self.shuffle(&mut p);
        p
    }

    /// Splits off an independent generator, advancing this one.
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from(self.next_u64())
    }

    /// Captures the generator's complete state for checkpointing.
    ///
    /// [`Rng::from_state`] rebuilds a generator that produces the exact
    /// same stream this one would, including a pending Box-Muller spare.
    pub fn state(&self) -> RngState {
        RngState {
            state: self.state,
            gauss_spare: self.gauss_spare,
        }
    }

    /// Rebuilds a generator from a captured [`RngState`].
    pub fn from_state(s: RngState) -> Self {
        Rng {
            state: s.state,
            gauss_spare: s.gauss_spare,
        }
    }
}

/// The complete serializable state of an [`Rng`].
///
/// Unlike a seed, this captures a generator *mid-stream*: the raw xorshift
/// word plus the cached second Box-Muller output, so `normal()` parity is
/// preserved across a save/restore.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RngState {
    /// The xorshift64* state word.
    pub state: u64,
    /// The pending second output of the Box-Muller transform, if any.
    pub gauss_spare: Option<f32>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Rng::seed_from(123);
        let mut b = Rng::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = Rng::seed_from(9);
        for _ in 0..10_000 {
            let x = rng.uniform();
            assert!((0.0..1.0).contains(&x), "uniform out of range: {x}");
        }
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = Rng::seed_from(5);
        let n = 50_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = Rng::seed_from(11);
        let mut p = rng.permutation(100);
        p.sort_unstable();
        assert_eq!(p, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Rng::seed_from(3);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn state_round_trip_resumes_the_exact_stream() {
        let mut rng = Rng::seed_from(77);
        // Burn some draws, and leave a Box-Muller spare pending so the
        // captured state is mid-transform.
        for _ in 0..13 {
            rng.next_u64();
        }
        let _ = rng.normal();
        let saved = rng.state();
        let mut resumed = Rng::from_state(saved);
        assert_eq!(rng, resumed);
        for _ in 0..100 {
            assert_eq!(rng.normal().to_bits(), resumed.normal().to_bits());
            assert_eq!(rng.next_u64(), resumed.next_u64());
        }
        // Capturing state must not perturb the stream.
        let mut a = Rng::seed_from(5);
        let mut b = Rng::seed_from(5);
        let _ = a.state();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zero_seed_is_valid() {
        let mut rng = Rng::seed_from(0);
        // Must not get stuck at zero.
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
    }
}

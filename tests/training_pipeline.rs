//! End-to-end training-session integration across the fast benchmarks:
//! runner semantics, convergence, and repeatability measurement.

use aibench::registry::Registry;
use aibench::repeatability::measure_variation;
use aibench::runner::{run_to_quality, RunConfig};

/// Benchmarks fast enough to train to target inside an integration test.
const FAST: [&str; 4] = ["DC-AI-C15", "DC-AI-C16", "DC-AI-C10", "DC-AI-C13"];

#[test]
fn fast_benchmarks_converge_to_their_targets() {
    let registry = Registry::aibench();
    let cfg = RunConfig {
        max_epochs: 40,
        eval_every: 1,
        ..RunConfig::default()
    };
    for code in FAST {
        let b = registry.get(code).unwrap();
        let res = run_to_quality(b, 1, &cfg);
        assert!(
            res.converged(),
            "{code} did not converge: final {} = {:.4} (target {})",
            b.metric,
            res.final_quality,
            b.target
        );
        assert!(b.target.met_by(res.final_quality));
        // The trace stops at convergence.
        assert_eq!(res.epochs_to_target, Some(res.epochs_run));
    }
}

#[test]
fn quality_traces_are_recorded_per_epoch() {
    let registry = Registry::aibench();
    let b = registry.get("DC-AI-C15").unwrap();
    let res = run_to_quality(
        b,
        3,
        &RunConfig {
            max_epochs: 2,
            eval_every: 1,
            ..RunConfig::default()
        },
    );
    assert_eq!(res.loss_trace.len(), res.epochs_run);
    assert_eq!(res.quality_trace.len(), res.epochs_run);
    assert!(res.quality_trace.iter().all(|(e, _)| *e >= 1));
}

#[test]
fn different_seeds_give_different_runs() {
    let registry = Registry::aibench();
    let b = registry.get("DC-AI-C15").unwrap();
    let cfg = RunConfig {
        max_epochs: 2,
        eval_every: 1,
        ..RunConfig::default()
    };
    let a = run_to_quality(b, 1, &cfg);
    let c = run_to_quality(b, 2, &cfg);
    assert_ne!(
        a.loss_trace, c.loss_trace,
        "seeds must vary initialization/order"
    );
}

#[test]
fn same_seed_reproduces_the_run_exactly() {
    let registry = Registry::aibench();
    let b = registry.get("DC-AI-C16").unwrap();
    let cfg = RunConfig {
        max_epochs: 3,
        eval_every: 1,
        ..RunConfig::default()
    };
    let a = run_to_quality(b, 7, &cfg);
    let c = run_to_quality(b, 7, &cfg);
    assert_eq!(a.loss_trace, c.loss_trace);
    assert_eq!(a.quality_trace, c.quality_trace);
}

#[test]
fn repeatability_harness_reports_epochs_per_run() {
    let registry = Registry::aibench();
    let b = registry.get("DC-AI-C15").unwrap();
    let rep = measure_variation(
        b,
        3,
        &RunConfig {
            max_epochs: 30,
            eval_every: 1,
            ..RunConfig::default()
        },
    );
    assert_eq!(
        rep.epochs.len(),
        3,
        "all runs should converge: {:?}",
        rep.epochs
    );
    assert!(rep.variation_pct.is_some());
    assert!(rep.mean_epochs.unwrap() >= 1.0);
}

#[test]
fn mlperf_baselines_train() {
    // One epoch each of the cheap MLPerf baselines must run end to end.
    let registry = Registry::mlperf();
    for code in ["MLPerf-Rec", "MLPerf-RL", "MLPerf-OD-Light"] {
        let b = registry.get(code).unwrap();
        let res = run_to_quality(
            b,
            1,
            &RunConfig {
                max_epochs: 1,
                eval_every: 1,
                ..RunConfig::default()
            },
        );
        assert_eq!(res.epochs_run, 1, "{code}");
        assert!(res.final_quality.is_finite(), "{code}");
    }
}

//! Cross-crate integration: the registry, subset selection, and the
//! paper's headline structural claims.

use aibench::characterize::combined_features;
use aibench::registry::Registry;
use aibench::subset::{select_subset, SubsetCandidate};
use aibench::BenchmarkId;
use aibench_gpusim::DeviceConfig;

#[test]
fn registry_covers_both_suites() {
    let all = Registry::all();
    assert_eq!(all.benchmarks().len(), 24);
    // Every AIBench id present exactly once, in DC-AI-C order.
    for (i, id) in BenchmarkId::AIBENCH.iter().enumerate() {
        assert_eq!(all.benchmarks()[i].id, *id);
    }
}

#[test]
fn shared_benchmarks_use_identical_specs() {
    // Paper: AIBench and MLPerf share Image Classification and
    // Recommendation; "their numbers are consistent in the rest of this
    // paper".
    let all = Registry::all();
    let a_ic = all.by_id(BenchmarkId::ImageClassification).unwrap();
    let m_ic = all.by_id(BenchmarkId::MlperfImageClassification).unwrap();
    assert_eq!(a_ic.spec(), m_ic.spec());
    let a_rec = all.by_id(BenchmarkId::Recommendation).unwrap();
    let m_rec = all.by_id(BenchmarkId::MlperfRecommendation).unwrap();
    assert_eq!(a_rec.spec(), m_rec.spec());
}

#[test]
fn subset_selection_with_paper_variation_recovers_paper_subset() {
    // Applying the Section 5.4 criteria (accepted metric, lowest
    // variation, cluster diversity) with the paper's own Table 5
    // variation numbers must recover {C1, C9, C16}.
    let registry = Registry::aibench();
    // Representative epochs-to-quality (the seed-1 measurements) for the
    // convergence-rate feature, so this test needs no training.
    let measured: [(&str, f64); 17] = [
        ("DC-AI-C1", 6.0),
        ("DC-AI-C2", 10.0),
        ("DC-AI-C3", 18.0),
        ("DC-AI-C4", 9.0),
        ("DC-AI-C5", 4.0),
        ("DC-AI-C6", 3.0),
        ("DC-AI-C7", 4.0),
        ("DC-AI-C8", 16.0),
        ("DC-AI-C9", 10.0),
        ("DC-AI-C10", 4.0),
        ("DC-AI-C11", 3.0),
        ("DC-AI-C12", 12.0),
        ("DC-AI-C13", 9.0),
        ("DC-AI-C14", 9.0),
        ("DC-AI-C15", 3.0),
        ("DC-AI-C16", 6.0),
        ("DC-AI-C17", 25.0),
    ];
    let epochs: std::collections::BTreeMap<String, f64> =
        measured.iter().map(|(c, e)| (c.to_string(), *e)).collect();
    let features = combined_features(&registry, DeviceConfig::titan_xp(), &epochs);
    let candidates: Vec<SubsetCandidate> = registry
        .benchmarks()
        .iter()
        .zip(&features)
        .map(|(b, (_, f))| SubsetCandidate {
            code: b.id.code().to_string(),
            has_accepted_metric: b.has_accepted_metric,
            variation_pct: b.paper.variation_pct,
            features: f.clone(),
        })
        .collect();
    let selection = select_subset(&candidates, 3, 42);
    let mut chosen = selection.chosen.clone();
    chosen.sort();
    assert_eq!(
        chosen,
        vec!["DC-AI-C1", "DC-AI-C16", "DC-AI-C9"],
        "selected {chosen:?}"
    );
}

#[test]
fn gan_tasks_are_excluded_from_subset_consideration() {
    let registry = Registry::aibench();
    let excluded: Vec<&str> = registry
        .benchmarks()
        .iter()
        .filter(|b| !b.has_accepted_metric)
        .map(|b| b.id.code())
        .collect();
    assert_eq!(excluded, vec!["DC-AI-C2", "DC-AI-C5"]);
}

#[test]
fn every_benchmark_has_paper_target_quality() {
    for b in Registry::all().benchmarks() {
        assert!(!b.paper.target_quality.is_empty(), "{}", b.id);
        assert!(!b.dataset.is_empty());
        assert!(!b.metric.is_empty());
    }
}

#[test]
fn table5_facts_round_trip() {
    // Spot-check the embedded Table 5 facts against the paper.
    let r = Registry::aibench();
    let f = |code: &str| r.get(code).unwrap().paper;
    assert_eq!(f("DC-AI-C1").variation_pct, Some(1.12));
    assert_eq!(f("DC-AI-C9").variation_pct, Some(0.0));
    assert_eq!(f("DC-AI-C9").repeats, Some(10));
    assert_eq!(f("DC-AI-C16").variation_pct, Some(1.90));
    assert_eq!(f("DC-AI-C8").variation_pct, Some(38.46));
    assert_eq!(f("DC-AI-C2").variation_pct, None);
}

#[test]
fn table6_facts_round_trip() {
    let r = Registry::aibench();
    let f = |code: &str| r.get(code).unwrap().paper;
    assert_eq!(f("DC-AI-C1").time_per_epoch_s, Some(10516.91));
    assert_eq!(f("DC-AI-C6").time_per_epoch_s, Some(14326.86));
    assert_eq!(f("DC-AI-C15").time_per_epoch_s, Some(6.38));
    assert_eq!(f("DC-AI-C15").total_hours, Some(0.06));
}

//! Characterization-pipeline integration: FLOPs counting, GPU simulation,
//! clustering, and cost accounting reproduce the paper's headline shapes.

use aibench::characterize::{combined_features, microarch_vectors, model_characteristics};
use aibench::cost::{subset_saving_pct, training_costs};
use aibench::registry::Registry;
use aibench_analysis::{kmeans, range_of, tsne, TsneParams};
use aibench_gpusim::DeviceConfig;

/// Representative seed-1 epochs-to-quality, so the pipeline tests need no
/// training.
fn fixed_epochs(registry: &Registry, _v: f64) -> std::collections::BTreeMap<String, f64> {
    let measured: [(&str, f64); 17] = [
        ("DC-AI-C1", 6.0),
        ("DC-AI-C2", 10.0),
        ("DC-AI-C3", 18.0),
        ("DC-AI-C4", 9.0),
        ("DC-AI-C5", 4.0),
        ("DC-AI-C6", 3.0),
        ("DC-AI-C7", 4.0),
        ("DC-AI-C8", 16.0),
        ("DC-AI-C9", 10.0),
        ("DC-AI-C10", 4.0),
        ("DC-AI-C11", 3.0),
        ("DC-AI-C12", 12.0),
        ("DC-AI-C13", 9.0),
        ("DC-AI-C14", 9.0),
        ("DC-AI-C15", 3.0),
        ("DC-AI-C16", 6.0),
        ("DC-AI-C17", 25.0),
    ];
    registry
        .benchmarks()
        .iter()
        .map(|b| {
            let e = measured
                .iter()
                .find(|(c, _)| *c == b.id.code())
                .map_or(10.0, |(_, e)| *e);
            (b.id.code().to_string(), e)
        })
        .collect()
}

#[test]
fn aibench_model_ranges_strictly_contain_mlperf() {
    // Figure 1(a)/Section 5.2.1: AIBench spans a wider range of both
    // parameters and FLOPs than MLPerf.
    let a = model_characteristics(&Registry::aibench());
    let m = model_characteristics(&Registry::mlperf());
    let ap = range_of(&a.iter().map(|c| c.params_m).collect::<Vec<_>>());
    let mp = range_of(&m.iter().map(|c| c.params_m).collect::<Vec<_>>());
    let af = range_of(&a.iter().map(|c| c.mflops).collect::<Vec<_>>());
    let mf = range_of(&m.iter().map(|c| c.mflops).collect::<Vec<_>>());
    assert!(ap.contains(&mp), "params: AIBench {ap:?} vs MLPerf {mp:?}");
    assert!(af.contains(&mf), "flops: AIBench {af:?} vs MLPerf {mf:?}");
    // The spread itself is large (paper: 0.03M..68.4M params).
    assert!(ap.span() > 100.0);
    assert!(af.span() > 10_000.0);
}

#[test]
fn figure2_extremes_match_paper() {
    let a = model_characteristics(&Registry::aibench());
    let by = |code: &str| a.iter().find(|c| c.code == code).unwrap();
    let max_params = a.iter().map(|c| c.params_m).fold(0.0, f64::max);
    let min_params = a.iter().map(|c| c.params_m).fold(f64::INFINITY, f64::min);
    let min_flops = a.iter().map(|c| c.mflops).fold(f64::INFINITY, f64::min);
    // Image-to-Text has the most complex model; Spatial Transformer the
    // least; Learning-to-Rank the smallest FLOPs.
    assert_eq!(by("DC-AI-C4").params_m, max_params);
    assert_eq!(by("DC-AI-C15").params_m, min_params);
    assert_eq!(by("DC-AI-C16").mflops, min_flops);
    // Object Detection and 3D Object Reconstruction have the largest and
    // approximately equal FLOPs.
    let od = by("DC-AI-C9").mflops;
    let recon = by("DC-AI-C13").mflops;
    for c in &a {
        assert!(
            c.mflops <= od.max(recon) + 1e-9,
            "{} exceeds OD/recon",
            c.code
        );
    }
    assert!(
        (od / recon).max(recon / od) < 2.0,
        "OD {od} vs recon {recon}"
    );
}

#[test]
fn learning_to_rank_has_lowest_ipc_and_t2t_highest() {
    let v = microarch_vectors(&Registry::aibench(), DeviceConfig::titan_xp());
    let ipc = |code: &str| v.iter().find(|(c, _)| c == code).unwrap().1.ipc_efficiency;
    let l2r = ipc("DC-AI-C16");
    let t2t = ipc("DC-AI-C3");
    for (code, m) in &v {
        assert!(
            l2r <= m.ipc_efficiency + 1e-9,
            "{code} has lower IPC than L2R"
        );
        assert!(
            t2t >= m.ipc_efficiency - 1e-9,
            "{code} has higher IPC than T2T"
        );
    }
}

#[test]
fn subset_members_land_in_three_distinct_clusters() {
    // Figure 4: Image Classification, Object Detection, Learning-to-Rank
    // occupy three different clusters.
    let registry = Registry::aibench();
    let features = combined_features(
        &registry,
        DeviceConfig::titan_xp(),
        &fixed_epochs(&registry, 10.0),
    );
    let points: Vec<Vec<f64>> = features.iter().map(|(_, f)| f.clone()).collect();
    let clusters = kmeans(&points, 3, 42);
    let cluster_of = |code: &str| clusters[features.iter().position(|(c, _)| c == code).unwrap()];
    let subset = [
        cluster_of("DC-AI-C1"),
        cluster_of("DC-AI-C9"),
        cluster_of("DC-AI-C16"),
    ];
    let mut distinct = subset.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    assert_eq!(distinct.len(), 3, "subset clusters {subset:?}");
}

#[test]
fn tsne_embedding_is_deterministic_and_finite() {
    let registry = Registry::aibench();
    let features = combined_features(
        &registry,
        DeviceConfig::titan_xp(),
        &fixed_epochs(&registry, 10.0),
    );
    let points: Vec<Vec<f64>> = features.iter().map(|(_, f)| f.clone()).collect();
    let a = tsne(&points, TsneParams::default(), 42);
    let b = tsne(&points, TsneParams::default(), 42);
    assert_eq!(a, b);
    assert!(a.iter().all(|p| p[0].is_finite() && p[1].is_finite()));
}

#[test]
fn subset_saves_roughly_the_papers_fraction() {
    // Section 5.4.2: the subset shortens AIBench's benchmarking cost by
    // 41%. With simulated epoch times and uniform epochs, the saving must
    // land in the same regime (well above zero, well below dropping
    // everything).
    let registry = Registry::aibench();
    let costs = training_costs(&registry, DeviceConfig::titan_rtx(), |_| 10.0);
    let saving = subset_saving_pct(&costs, &["DC-AI-C1", "DC-AI-C9", "DC-AI-C16"]);
    assert!((20.0..85.0).contains(&saving), "saving {saving:.1}%");
}

#[test]
fn epoch_cost_extremes_match_table6_shape() {
    let registry = Registry::aibench();
    let costs = training_costs(&registry, DeviceConfig::titan_xp(), |_| 1.0);
    let by = |code: &str| {
        costs
            .iter()
            .find(|c| c.code == code)
            .unwrap()
            .sim_seconds_per_epoch
    };
    // Image Classification's epoch dwarfs Spatial Transformer's; both
    // extremes match the paper's Table 6 ordering.
    let all: Vec<f64> = costs.iter().map(|c| c.sim_seconds_per_epoch).collect();
    let max = all.iter().copied().fold(0.0, f64::max);
    let min = all.iter().copied().fold(f64::INFINITY, f64::min);
    assert!(by("DC-AI-C1") > 0.3 * max, "IC should be near the top");
    assert!(
        by("DC-AI-C15") < 10.0 * min,
        "STN should be near the bottom"
    );
}

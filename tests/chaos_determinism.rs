//! End-to-end guarantees of the chaos subsystem (`aibench-chaos`):
//!
//! * a fixed chaos seed replays the identical chaos-event log and
//!   admission schedule at 1, 4, and 8 threads, with bitwise-identical
//!   per-session results;
//! * under any seeded chaos schedule, every accepted session's final
//!   `RunResult` is bitwise identical to its chaos-free counterpart;
//! * the empty `ChaosSchedule` is a true no-op: a calm soak is
//!   indistinguishable from a plain `run_trace` replay (schedule, ticks,
//!   and result bits);
//! * over real TCP, a client whose connection is killed mid-stream
//!   reconnects, resumes its event stream past the last seq it saw, and
//!   receives the same final result bits as a client that was never
//!   interrupted.
//!
//! Tests that reconfigure the process-wide pool serialize on a mutex and
//! restore the environment's thread count afterwards (the same discipline
//! as `tests/serve_determinism.rs`).

use std::sync::Mutex;
use std::time::Duration;

use aibench::registry::Registry;
use aibench_chaos::{run_soak, ChaosSchedule, SoakConfig};
use aibench_parallel::ParallelConfig;
use aibench_serve::wire::{read_frame, write_frame, ClientMsg, ServerMsg};
use aibench_serve::{run_trace, RunRequest, ServeConfig};

/// Serializes pool reconfiguration across the test harness's threads.
static POOL_LOCK: Mutex<()> = Mutex::new(());

const PROBE: &str = "DC-AI-C15";

fn soak_requests() -> Vec<RunRequest> {
    vec![
        RunRequest::new("acme", PROBE, 1, 3),
        RunRequest::new("acme", PROBE, 2, 2),
        RunRequest::new("zeta", PROBE, 3, 3),
        RunRequest::new("ops", PROBE, 4, 2).with_priority(3),
    ]
}

#[test]
fn fixed_chaos_seed_replays_identically_across_thread_counts() {
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let registry = Registry::aibench();
    let requests = soak_requests();
    let chaos = ChaosSchedule::seeded(33, 60, 14);
    let mut baseline = None;
    for threads in [1usize, 4, 8] {
        ParallelConfig::with_threads(threads).install();
        let report = run_soak(&registry, &requests, &chaos, SoakConfig::default());
        assert!(
            !report.chaos_log.is_empty(),
            "the seeded schedule must actually fire"
        );
        match &baseline {
            None => baseline = Some(report),
            Some(expect) => {
                assert_eq!(
                    expect.chaos_signature(),
                    report.chaos_signature(),
                    "{threads}-thread chaos-event log diverged"
                );
                assert_eq!(
                    expect.schedule_signature(),
                    report.schedule_signature(),
                    "{threads}-thread schedule diverged"
                );
                assert!(
                    expect.deterministic_eq(&report),
                    "{threads}-thread chaos soak diverged from serial"
                );
            }
        }
    }
    ParallelConfig::from_env().install();
}

#[test]
fn chaos_never_changes_result_bits() {
    let registry = Registry::aibench();
    let requests = soak_requests();
    let calm = run_soak(
        &registry,
        &requests,
        &ChaosSchedule::empty(),
        SoakConfig::default(),
    );
    for seed in [7u64, 33, 101] {
        let chaos = ChaosSchedule::seeded(seed, 60, 14);
        let report = run_soak(&registry, &requests, &chaos, SoakConfig::default());
        let results = report.results();
        for (key, calm_done) in calm.results() {
            let done = results
                .get(&key)
                .unwrap_or_else(|| panic!("seed {seed}: submission {key:?} lost under chaos"));
            assert!(
                done.result.deterministic_eq(&calm_done.result),
                "seed {seed}: result bits changed under chaos for {key:?} \
                 (chaos log: {})",
                report.chaos_signature()
            );
            // Outcome signatures may legitimately differ (store chaos
            // surfaces CheckpointIo recoveries); the bits may not.
        }
    }
}

#[test]
fn empty_schedule_soak_is_identical_to_a_plain_trace_replay() {
    let registry = Registry::aibench();
    let requests = soak_requests();
    let soak = run_soak(
        &registry,
        &requests,
        &ChaosSchedule::empty(),
        SoakConfig::default(),
    );
    assert_eq!(soak.chaos_signature(), "calm");
    assert_eq!(
        soak.retries + soak.reconnects + soak.redeliveries + soak.duplicates_dropped,
        0,
        "a calm soak must generate no recovery traffic"
    );
    // The identical requests as a tick-0 trace through the plain core.
    let trace: Vec<(u64, RunRequest)> = requests
        .iter()
        .enumerate()
        .map(|(i, r)| (0u64, r.clone().with_submission(i as u64 + 1)))
        .collect();
    let plain = run_trace(&registry, ServeConfig::default(), &trace);
    assert_eq!(soak.schedule_signature(), plain.schedule_signature());
    assert_eq!(soak.ticks, plain.ticks);
    for (outcome, session) in soak.outcomes.iter().zip(&plain.sessions) {
        let done = outcome.done.as_ref().expect("calm soak completes");
        assert_eq!(done.session, session.done.session);
        assert_eq!(done.outcome_signature, session.done.outcome_signature);
        assert_eq!(done.queue_wait_ticks, session.done.queue_wait_ticks);
        assert!(done.result.deterministic_eq(&session.done.result));
    }
}

#[test]
fn killed_tcp_connection_reconnects_and_resumes_the_same_bits() {
    let registry = Registry::aibench();
    let request = RunRequest::new("acme", PROBE, 7, 4).with_submission(42);
    // What an uninterrupted client would receive.
    let expected = run_trace(&registry, ServeConfig::default(), &[(0, request.clone())]);

    let (addr_tx, addr_rx) = std::sync::mpsc::channel();
    let server = std::thread::spawn(move || {
        let registry = Registry::aibench();
        aibench_serve::serve_sessions_with(
            &registry,
            ServeConfig::default(),
            "127.0.0.1:0",
            1,
            Duration::from_secs(10),
            move |addr| addr_tx.send(addr).unwrap(),
        )
    });
    let addr = addr_rx.recv().expect("server never bound");

    // Submit, read until the first progress event, then kill the
    // connection mid-stream.
    let last_seq;
    {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        write_frame(&mut stream, &ClientMsg::Submit(request.clone()).to_bytes()).unwrap();
        loop {
            let payload = read_frame(&mut stream)
                .expect("stream readable")
                .expect("server open");
            match ServerMsg::from_bytes(&payload).expect("valid frame") {
                ServerMsg::Progress(p) => {
                    last_seq = p.seq;
                    break;
                }
                ServerMsg::Accepted { .. } => {}
                other => panic!("unexpected message before progress: {other:?}"),
            }
        }
        // Dropping the stream here closes the socket mid-progress-stream.
    }
    assert!(last_seq > 0, "must have observed at least one event");

    // Redeem the lease: the replayed stream resumes past `last_seq` and
    // ends in the same final record an uninterrupted client gets.
    let (events, done) =
        aibench_serve::reconnect_and_wait(addr, "acme", 42, last_seq).expect("lease redeems");
    assert_eq!(server.join().unwrap().unwrap(), 1);
    assert!(
        events.iter().all(|e| e.seq > last_seq),
        "replay must not repeat events the client already saw"
    );
    assert!(
        !events.is_empty(),
        "the resumed stream must replay the missed progress"
    );
    assert!(
        done.result
            .deterministic_eq(&expected.sessions[0].done.result),
        "reconnected client's final bits differ from the uninterrupted run"
    );
    assert_eq!(
        done.outcome_signature,
        expected.sessions[0].done.outcome_signature
    );
}

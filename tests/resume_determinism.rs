//! Kill-and-resume determinism: interrupting a training session at an
//! arbitrary point and restarting from the latest checkpoint must yield a
//! [`RunResult`] bitwise identical to an uninterrupted run — for CNN, RNN,
//! and attention benchmarks, at any `AIBENCH_THREADS` setting (the CI
//! matrix runs this file at 1 and 4 threads).

use aibench::ckpt::{
    fault_injection_run, params_fingerprint, run_to_quality_resumable, run_until_killed,
};
use aibench::runner::{run_to_quality, RunConfig};
use aibench::Registry;
use aibench_ckpt::{CheckpointSink, MemorySink};

/// One benchmark per architecture family the acceptance criteria name:
/// spatial transformer (CNN), text-to-text RNN, and the attention-based
/// 3D object reconstruction model. Seeds are chosen so each run survives
/// past epoch 2 — the kill point — instead of converging before it.
const FAMILIES: &[(&str, &str, u64)] = &[
    ("DC-AI-C15", "cnn", 5),
    ("DC-AI-C6", "rnn", 1),
    ("DC-AI-C3", "attention", 3),
];

fn cfg(max_epochs: usize, checkpoint_every: usize) -> RunConfig {
    RunConfig {
        max_epochs,
        eval_every: 1,
        checkpoint_every,
        ..RunConfig::default()
    }
}

#[test]
fn kill_and_resume_is_bitwise_identical_across_families() {
    let registry = Registry::aibench();
    for &(code, family, seed) in FAMILIES {
        let b = registry.get(code).unwrap();
        let config = cfg(4, 1);
        let baseline = run_to_quality(b, seed, &config);

        // Kill after two epochs, then resume to completion.
        let mut sink = MemorySink::new();
        let killed = run_until_killed(b, seed, &config, &mut sink, 2).unwrap();
        assert!(
            killed.is_none(),
            "{family}: session should have died at the epoch budget"
        );
        assert!(
            !sink.epochs().is_empty(),
            "{family}: the killed session saved no checkpoints"
        );
        let resumed = run_to_quality_resumable(b, seed, &config, &mut sink).unwrap();
        assert_eq!(
            resumed.resumed_from,
            Some(2),
            "{family}: expected to resume from the epoch-2 snapshot"
        );
        assert!(
            baseline.deterministic_eq(&resumed),
            "{family}: resumed result diverged from uninterrupted run\n\
             baseline: {baseline:?}\nresumed: {resumed:?}"
        );
    }
}

#[test]
fn repeated_kills_still_converge_to_the_same_result() {
    let registry = Registry::aibench();
    let b = registry.get("DC-AI-C15").unwrap();
    let config = cfg(5, 1);
    let baseline = run_to_quality(b, 1, &config);

    let mut sink = MemorySink::new();
    let report = fault_injection_run(b, 1, &config, &mut sink, 1).unwrap();
    assert!(report.kills >= 1, "kill_every=1 must kill at least once");
    assert!(
        baseline.deterministic_eq(&report.result),
        "fault-injected run diverged after {} kills (resume points {:?})",
        report.kills,
        report.resume_points
    );
}

#[test]
fn corrupt_newest_snapshot_falls_back_to_older_one() {
    let registry = Registry::aibench();
    let b = registry.get("DC-AI-C15").unwrap();
    let config = cfg(4, 1);
    let baseline = run_to_quality(b, 5, &config);

    let mut sink = MemorySink::new();
    assert!(run_until_killed(b, 5, &config, &mut sink, 3)
        .unwrap()
        .is_none());
    let newest = *sink.epochs().last().unwrap();
    assert!(newest >= 2, "need at least two snapshots for the fallback");
    // Flip one payload byte in the newest snapshot; its section CRC must
    // catch it, and resume must fall back to the older snapshot.
    sink.bytes_mut(newest).unwrap()[40] ^= 0x01;
    let resumed = run_to_quality_resumable(b, 5, &config, &mut sink).unwrap();
    assert!(
        resumed.resumed_from.unwrap() < newest,
        "resume used the corrupted snapshot at epoch {newest}"
    );
    assert!(
        baseline.deterministic_eq(&resumed),
        "fallback resume diverged from uninterrupted run"
    );
}

#[test]
fn all_snapshots_corrupt_restarts_from_scratch() {
    let registry = Registry::aibench();
    let b = registry.get("DC-AI-C15").unwrap();
    let config = cfg(3, 1);
    let baseline = run_to_quality(b, 9, &config);

    let mut sink = MemorySink::new();
    assert!(run_until_killed(b, 9, &config, &mut sink, 2)
        .unwrap()
        .is_none());
    let epochs: Vec<usize> = sink.epochs();
    for &e in &epochs {
        sink.bytes_mut(e).unwrap()[0] ^= 0xFF; // destroy the magic
    }
    let resumed = run_to_quality_resumable(b, 9, &config, &mut sink).unwrap();
    assert_eq!(resumed.resumed_from, None, "no snapshot was usable");
    assert!(baseline.deterministic_eq(&resumed));
}

#[test]
fn resumed_trainer_weights_match_uninterrupted_training() {
    let registry = Registry::aibench();
    let b = registry.get("DC-AI-C6").unwrap();
    let config = cfg(3, 1);

    // Train 3 epochs straight through.
    let mut straight = b.build(4);
    for _ in 0..3 {
        straight.train_epoch();
    }

    // Train 1 epoch, snapshot, restore into a fresh trainer, finish there.
    let mut first = b.build(4);
    first.train_epoch();
    let mut progress = aibench::ckpt::PartialRun::fresh();
    progress.epochs_run = 1;
    let bytes = aibench::ckpt::snapshot_run(b, 4, &config, &progress, first.as_ref());
    let (mut resumed, p) = aibench::ckpt::restore_run(b, 4, &config, &bytes).unwrap();
    assert_eq!(p.epochs_run, 1);
    for _ in 0..2 {
        resumed.train_epoch();
    }

    assert_eq!(
        params_fingerprint(straight.as_ref()),
        params_fingerprint(resumed.as_ref()),
        "weights diverged after snapshot/restore mid-run"
    );
}

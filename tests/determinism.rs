//! Determinism-by-construction guarantees of `aibench-parallel`.
//!
//! Every kernel wired through the threading runtime must produce *bitwise*
//! identical results for any `AIBENCH_THREADS` value — the property the
//! paper's run-to-run variation methodology (Section 5.4) depends on: a
//! coefficient of variation below 2% must measure the benchmark, never the
//! host scheduler.
//!
//! Tests reconfigure the process-wide pool, so they serialize on a mutex
//! and restore the environment's thread count afterwards.

use std::sync::Mutex;

use aibench::registry::Registry;
use aibench::runner::{run_to_quality, RunConfig};
use aibench_parallel::ParallelConfig;
use aibench_tensor::{ops, Rng, Tensor};

/// Serializes pool reconfiguration across the test harness's threads.
static POOL_LOCK: Mutex<()> = Mutex::new(());

/// The thread counts swept by every test: serial, even, odd (so chunk
/// boundaries never align with the worker count), and oversubscribed.
const SWEEP: [usize; 4] = [1, 2, 3, 8];

/// Runs `f` once per sweep entry and asserts all results are bitwise equal
/// to the single-threaded baseline.
fn bitwise_across_threads(what: &str, f: impl Fn() -> Vec<f32>) {
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut baseline = None;
    for &t in &SWEEP {
        ParallelConfig::with_threads(t).install();
        let got: Vec<u32> = f().iter().map(|v| v.to_bits()).collect();
        match &baseline {
            None => baseline = Some(got),
            Some(expect) => assert_eq!(
                expect, &got,
                "{what}: {t}-thread result differs bitwise from serial"
            ),
        }
    }
    ParallelConfig::from_env().install();
}

#[test]
fn matmul_bitwise_identical_across_threads() {
    let mut rng = Rng::seed_from(11);
    let a = Tensor::randn(&[37, 41], &mut rng);
    let b = Tensor::randn(&[41, 29], &mut rng);
    bitwise_across_threads("matmul", || ops::matmul(&a, &b).into_vec());
    bitwise_across_threads("matmul_naive", || ops::matmul_naive(&a, &b).into_vec());
    let ba = Tensor::randn(&[5, 13, 17], &mut rng);
    let bb = Tensor::randn(&[5, 17, 7], &mut rng);
    bitwise_across_threads("batch_matmul", || ops::batch_matmul(&ba, &bb).into_vec());
}

#[test]
fn conv2d_forward_and_backward_bitwise_identical() {
    let mut rng = Rng::seed_from(12);
    let x = Tensor::randn(&[3, 4, 11, 11], &mut rng);
    let w = Tensor::randn(&[6, 4, 3, 3], &mut rng);
    let args = ops::Conv2dArgs::new(2, 1);
    let y = ops::conv2d(&x, &w, args);
    let gy = Tensor::randn(y.shape(), &mut rng);
    bitwise_across_threads("conv2d forward", || ops::conv2d(&x, &w, args).into_vec());
    bitwise_across_threads("conv2d backward input", || {
        ops::conv2d_backward_input(&gy, &w, (11, 11), args).into_vec()
    });
    bitwise_across_threads("conv2d backward weight", || {
        ops::conv2d_backward_weight(&x, &gy, (3, 3), args).into_vec()
    });
}

#[test]
fn pooling_bitwise_identical_across_threads() {
    let mut rng = Rng::seed_from(13);
    let x = Tensor::randn(&[4, 3, 10, 10], &mut rng);
    let (y, winners) = ops::max_pool2d(&x, 2, 2);
    let gy = Tensor::randn(y.shape(), &mut rng);
    bitwise_across_threads("max_pool2d", || ops::max_pool2d(&x, 2, 2).0.into_vec());
    bitwise_across_threads("max_pool2d_backward", || {
        ops::max_pool2d_backward(&gy, &winners, x.shape()).into_vec()
    });
    bitwise_across_threads("avg_pool2d", || ops::avg_pool2d(&x, 3, 1).into_vec());
    bitwise_across_threads("avg_pool2d_backward", || {
        ops::avg_pool2d_backward(&gy, x.shape(), 2, 2).into_vec()
    });
}

#[test]
fn elementwise_and_reductions_bitwise_identical() {
    let mut rng = Rng::seed_from(14);
    // Larger than one ELEMWISE_CHUNK so the pool actually engages.
    let x = Tensor::randn(&[3, 40_000], &mut rng);
    let y = Tensor::randn(&[3, 40_000], &mut rng);
    bitwise_across_threads("map", || x.map(|v| v.tanh()).into_vec());
    bitwise_across_threads("zip", || x.zip(&y, |a, b| a * b + a).into_vec());
    bitwise_across_threads("softmax_last", || ops::softmax_last(&x).into_vec());
    bitwise_across_threads("log_softmax_last", || ops::log_softmax_last(&x).into_vec());
    bitwise_across_threads("sum / sq_norm", || vec![x.sum(), x.sq_norm()]);
    bitwise_across_threads("add_scaled_inplace", || {
        let mut z = x.clone();
        z.add_scaled_inplace(&y, 0.37);
        z.into_vec()
    });
}

#[test]
fn training_session_bitwise_identical_across_threads() {
    let registry = Registry::aibench();
    let bench = registry.get("DC-AI-C15").expect("spatial transformer");
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut baseline: Option<(Vec<u32>, u64)> = None;
    for &t in &SWEEP {
        let cfg = RunConfig {
            max_epochs: 2,
            eval_every: 1,
            parallel: Some(ParallelConfig::with_threads(t)),
            ..RunConfig::default()
        };
        let res = run_to_quality(bench, 3, &cfg);
        let fingerprint = (
            res.loss_trace.iter().map(|l| l.to_bits()).collect(),
            res.final_quality.to_bits(),
        );
        match &baseline {
            None => baseline = Some(fingerprint),
            Some(expect) => assert_eq!(
                expect, &fingerprint,
                "{t}-thread training session diverged from serial"
            ),
        }
    }
    ParallelConfig::from_env().install();
}

#[test]
fn gradcheck_passes_under_four_threads() {
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    ParallelConfig::with_threads(4).install();
    let mut rng = Rng::seed_from(15);
    let x = Tensor::randn(&[2, 2, 5, 5], &mut rng);
    let w = Tensor::randn(&[3, 2, 3, 3], &mut rng);
    aibench_autograd::check_gradients(&[x, w], 1e-2, 1e-2, |g, vars| {
        let y = g.conv2d(vars[0], vars[1], ops::Conv2dArgs::new(1, 1));
        let p = g.max_pool2d(y, 2, 2);
        g.sum(p)
    });
    ParallelConfig::from_env().install();
}

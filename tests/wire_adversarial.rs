//! Adversarial-wire property tests (`aibench-serve`): no sequence of
//! hostile bytes may ever *misparse* — corrupt input is rejected (or, for
//! duplicated/replayed frames, deduplicated), never silently decoded into
//! a different message.
//!
//! * a single flipped bit anywhere in a frame payload is caught by the
//!   container CRC and rejected;
//! * any strict prefix of a payload fails to decode;
//! * a byte stream cut at any offset either yields the exact original
//!   frames, a clean end-of-stream, or an error — never a short payload;
//! * duplicated and reordered progress frames are deduplicated by seq in
//!   the client's receive loop ([`drain_stream`]), which still delivers
//!   the final record intact;
//! * a length prefix of exactly `MAX_FRAME` is accepted; `MAX_FRAME + 1`
//!   is rejected before any payload byte is read.

use std::io::Cursor;

use aibench::runner::RunResult;
use aibench_serve::wire::{read_frame, write_frame, MAX_FRAME};
use aibench_serve::{
    drain_stream, ClientMsg, DoneMsg, Event, ProgressEvent, RunRequest, ServerMsg,
};
use proptest::prelude::*;

/// A deterministic palette of client messages for sampling.
fn client_msgs() -> Vec<ClientMsg> {
    vec![
        ClientMsg::Submit(RunRequest::new("acme", "DC-AI-C15", 7, 4).with_submission(42)),
        ClientMsg::Submit(
            RunRequest::new("zeta", "DC-AI-C16", 11, 2)
                .with_priority(3)
                .with_submission(9),
        ),
        ClientMsg::Reconnect {
            tenant: "acme".to_string(),
            submission: 42,
            after_seq: 17,
        },
    ]
}

/// A deterministic palette of server messages for sampling.
fn server_msgs() -> Vec<ServerMsg> {
    vec![
        ServerMsg::Accepted { session: 3 },
        ServerMsg::Rejected {
            reason: "overloaded: 4 session(s) queued (bound 4)".to_string(),
            retryable: true,
        },
        ServerMsg::Progress(progress(3, 5)),
        ServerMsg::Done(done_msg(3)),
    ]
}

fn progress(session: u64, seq: u64) -> ProgressEvent {
    ProgressEvent {
        session,
        seq,
        tick: seq + 10,
        event: Event::Epoch {
            epoch: seq as usize,
            loss: 0.5,
            quality: Some(0.25),
        },
    }
}

fn done_msg(session: u64) -> DoneMsg {
    DoneMsg {
        session,
        outcome_signature: "converged".to_string(),
        fault_signature: "clean".to_string(),
        result: RunResult {
            code: "DC-AI-C15".to_string(),
            seed: 7,
            epochs_run: 4,
            epochs_to_target: Some(3),
            quality_trace: vec![(1, 0.1), (2, 0.2), (3, 0.4)],
            loss_trace: vec![0.9, 0.7, 0.5, 0.4],
            final_quality: 0.4,
            wall_seconds: 0.01,
            resumed_from: None,
        },
        queue_wait_ticks: 2,
        epochs_executed: 4,
        recoveries: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // One flipped bit anywhere in a client payload: the CRC refuses it.
    #[test]
    fn bit_flipped_client_frames_are_rejected(
        msg in prop::sample::select(client_msgs()),
        raw_bit in 0u64..1_000_000,
    ) {
        let mut bytes = msg.to_bytes();
        let bit = (raw_bit % (bytes.len() as u64 * 8)) as usize;
        bytes[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(
            ClientMsg::from_bytes(&bytes).is_err(),
            "flipping bit {bit} was not detected"
        );
    }

    // One flipped bit anywhere in a server payload: the CRC refuses it.
    #[test]
    fn bit_flipped_server_frames_are_rejected(
        msg in prop::sample::select(server_msgs()),
        raw_bit in 0u64..1_000_000,
    ) {
        let mut bytes = msg.to_bytes();
        let bit = (raw_bit % (bytes.len() as u64 * 8)) as usize;
        bytes[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(
            ServerMsg::from_bytes(&bytes).is_err(),
            "flipping bit {bit} was not detected"
        );
    }

    // Any strict prefix of a payload fails to decode — truncation can
    // never produce a different valid message.
    #[test]
    fn truncated_payloads_are_rejected(
        msg in prop::sample::select(server_msgs()),
        raw_keep in 0u64..1_000_000,
    ) {
        let bytes = msg.to_bytes();
        let keep = (raw_keep % bytes.len() as u64) as usize;
        prop_assert!(
            ServerMsg::from_bytes(&bytes[..keep]).is_err(),
            "a {keep}-byte prefix of a {}-byte payload decoded",
            bytes.len()
        );
    }

    // A framed byte stream cut at any offset: every frame read out before
    // the cut is byte-identical to what was written, and the cut itself
    // surfaces as a clean end-of-stream or an error — never a short
    // payload handed to the decoder.
    #[test]
    fn a_stream_cut_anywhere_never_misparses(
        first in prop::sample::select(server_msgs()),
        second in prop::sample::select(server_msgs()),
        raw_cut in 0u64..1_000_000,
    ) {
        let payloads = [first.to_bytes(), second.to_bytes()];
        let mut stream = Vec::new();
        for p in &payloads {
            write_frame(&mut stream, p).unwrap();
        }
        let cut = (raw_cut % (stream.len() as u64 + 1)) as usize;
        let mut r = &stream[..cut];
        let mut delivered = 0usize;
        while let Ok(Some(frame)) = read_frame(&mut r) {
            prop_assert!(delivered < payloads.len());
            prop_assert_eq!(
                &frame,
                &payloads[delivered],
                "frame {} was altered by the cut at {}",
                delivered,
                cut
            );
            delivered += 1;
        }
    }

    // Duplicated and reordered progress frames are deduplicated by seq:
    // the client's receive loop yields a strictly increasing, repeat-free
    // event stream and the intact final record.
    #[test]
    fn duplicated_and_reordered_progress_is_deduplicated(
        dups in prop::collection::vec(0u64..6, 0..8),
        swaps in prop::collection::vec(0u64..1_000, 0..6),
    ) {
        const SEQS: u64 = 6;
        // Start from the in-order stream 1..=SEQS, then inject duplicates
        // and apply adversarial swaps.
        let mut order: Vec<u64> = (1..=SEQS).collect();
        for &d in &dups {
            let dup = order[d as usize % order.len()];
            order.push(dup);
        }
        for &s in &swaps {
            let a = (s % order.len() as u64) as usize;
            let b = ((s / 7) % order.len() as u64) as usize;
            order.swap(a, b);
        }
        let mut stream = Vec::new();
        write_frame(&mut stream, &ServerMsg::Accepted { session: 3 }.to_bytes()).unwrap();
        for &seq in &order {
            write_frame(
                &mut stream,
                &ServerMsg::Progress(progress(3, seq)).to_bytes(),
            )
            .unwrap();
        }
        write_frame(&mut stream, &ServerMsg::Done(done_msg(3)).to_bytes()).unwrap();

        let (events, done) = drain_stream(&mut Cursor::new(stream), 0).unwrap();
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        prop_assert!(
            seqs.windows(2).all(|w| w[0] < w[1]),
            "delivered seqs not strictly increasing: {:?} (order {:?})",
            seqs,
            order
        );
        // The first frame of the stream always survives dedupe.
        prop_assert_eq!(seqs.first().copied(), Some(order[0]));
        prop_assert_eq!(done.session, 3);
        prop_assert_eq!(done.outcome_signature.as_str(), "converged");
    }
}

/// The boundary: a length prefix of exactly `MAX_FRAME` is a legal frame;
/// one byte more is rejected before any payload is read.
#[test]
fn max_frame_is_accepted_and_one_more_byte_is_rejected() {
    let mut stream = Vec::with_capacity(MAX_FRAME as usize + 4);
    stream.extend_from_slice(&MAX_FRAME.to_le_bytes());
    stream.resize(MAX_FRAME as usize + 4, 0xA5);
    let frame = read_frame(&mut &stream[..])
        .expect("MAX_FRAME is legal")
        .expect("frame present");
    assert_eq!(frame.len(), MAX_FRAME as usize);
    assert!(frame.iter().all(|&b| b == 0xA5));

    // MAX_FRAME + 1: rejected from the prefix alone — the 4-byte header
    // is the whole stream, so reaching for the payload would be
    // UnexpectedEof, and InvalidData proves the length check fired first.
    let hostile = (MAX_FRAME + 1).to_le_bytes();
    let err = read_frame(&mut &hostile[..]).expect_err("oversized frame");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

    // An interrupted write that got only the MAX_FRAME prefix out: the
    // reader reports the truncation rather than inventing a frame.
    let prefix_only = MAX_FRAME.to_le_bytes();
    let err = read_frame(&mut &prefix_only[..]).expect_err("truncated frame");
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
}

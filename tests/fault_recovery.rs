//! End-to-end guarantees of the supervised runner (`aibench-fault`):
//!
//! * an empty fault schedule is *bitwise identical* to the plain runner;
//! * the same seed + schedule reproduces the identical run — trajectory,
//!   fault log, and outcome — across repeats and across thread counts;
//! * injected NaNs trigger rollback recovery and the paper's minimum
//!   subset still converges;
//! * persistent faults end in quarantine, never in a hang.
//!
//! Tests that reconfigure the process-wide pool serialize on a mutex and
//! restore the environment's thread count afterwards (the same discipline
//! as `tests/determinism.rs`).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Mutex;

use aibench::registry::Registry;
use aibench::runner::{run_to_quality, RunConfig};
use aibench_ckpt::{FailingSink, MemorySink};
use aibench_dist::{run_data_parallel, DistConfig, DistFaultKind, DistSchedule, RunParams};
use aibench_fault::{
    supervised_run, supervised_run_with_sink, FaultEvent, FaultKind, FaultSchedule, Outcome,
    RecoveryPolicy, SentinelConfig, SupervisorConfig, TrainFault,
};
use aibench_parallel::ParallelConfig;

/// Serializes pool reconfiguration across the test harness's threads.
static POOL_LOCK: Mutex<()> = Mutex::new(());

/// The minimum subset Section 5.4's criteria recover: Image
/// Classification, Object Detection, Learning-to-Rank.
const MIN_SUBSET: [&str; 3] = ["DC-AI-C1", "DC-AI-C9", "DC-AI-C16"];

fn cfg(max_epochs: usize) -> RunConfig {
    RunConfig {
        max_epochs,
        eval_every: 1,
        ..RunConfig::default()
    }
}

#[test]
fn empty_schedule_is_bitwise_identical_to_plain_runner() {
    let registry = Registry::aibench();
    let sup = SupervisorConfig::default();
    for code in ["DC-AI-C15", "DC-AI-C16"] {
        let b = registry.get(code).unwrap();
        let config = cfg(6);
        let plain = run_to_quality(b, 1, &config);
        let supervised = supervised_run(b, 1, &config, &FaultSchedule::empty(), &sup);
        assert!(
            plain.deterministic_eq(&supervised.result),
            "{code}: supervision changed the trajectory"
        );
        assert_eq!(supervised.fault_signature(), "clean");
        assert!(
            supervised.outcome.kind() == "converged"
                || supervised.outcome.kind() == "missed-target"
        );
    }
}

#[test]
fn same_schedule_reproduces_the_identical_run() {
    let registry = Registry::aibench();
    let b = registry.get("DC-AI-C15").unwrap();
    let schedule = FaultSchedule::new(9)
        .inject(2, FaultKind::GradNan)
        .inject(3, FaultKind::LossValue { value: f32::NAN })
        .inject(4, FaultKind::SaveFail);
    let sup = SupervisorConfig::default();
    let a = supervised_run(b, 2, &cfg(30), &schedule, &sup);
    let b_run = supervised_run(b, 2, &cfg(30), &schedule, &sup);
    assert!(
        a.deterministic_eq(&b_run),
        "same seed + schedule diverged:\n  {}\n  {}",
        a.fault_signature(),
        b_run.fault_signature()
    );
    assert!(!a.faults.is_empty(), "the schedule must actually inject");
}

#[test]
fn supervised_runs_are_bitwise_identical_across_thread_counts() {
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let registry = Registry::aibench();
    let b = registry.get("DC-AI-C15").unwrap();
    let schedule = FaultSchedule::new(5)
        .inject(2, FaultKind::LossValue { value: f32::NAN })
        .inject(3, FaultKind::GradExplosion { scale: 1e12 });
    let sup = SupervisorConfig::default();
    let mut baseline = None;
    for threads in [1usize, 4] {
        let config = RunConfig {
            parallel: Some(ParallelConfig::with_threads(threads)),
            ..cfg(30)
        };
        let run = supervised_run(b, 2, &config, &schedule, &sup);
        match &baseline {
            None => baseline = Some(run),
            Some(expect) => assert!(
                expect.deterministic_eq(&run),
                "{threads}-thread supervised run differs from serial:\n  {}\n  {}",
                expect.fault_signature(),
                run.fault_signature()
            ),
        }
    }
    ParallelConfig::from_env().install();
}

#[test]
fn nan_injection_rolls_back_and_minimum_subset_still_converges() {
    let registry = Registry::aibench();
    let sup = SupervisorConfig::default();
    for code in MIN_SUBSET {
        let b = registry.get(code).unwrap();
        let schedule = FaultSchedule::new(7).inject(2, FaultKind::LossValue { value: f32::NAN });
        let run = supervised_run(b, 1, &cfg(40), &schedule, &sup);
        assert!(
            matches!(run.outcome, Outcome::Recovered { .. }),
            "{code}: expected recovery, got {}",
            run.outcome
        );
        assert!(
            run.faults
                .iter()
                .any(|e| e.fault.kind() == "non-finite-loss"),
            "{code}: the NaN loss must be in the fault log"
        );
        assert!(
            run.faults.iter().any(|e| e.action.kind() == "rollback"),
            "{code}: recovery must roll back"
        );
        assert!(
            run.result.converged(),
            "{code}: did not reach its target after recovery (final {:.4})",
            run.result.final_quality
        );
    }
}

#[test]
fn grad_nan_is_sanitized_in_place_without_rollback() {
    let registry = Registry::aibench();
    let b = registry.get("DC-AI-C15").unwrap();
    let schedule = FaultSchedule::new(3).inject(2, FaultKind::GradNan);
    let run = supervised_run(b, 2, &cfg(40), &schedule, &SupervisorConfig::default());
    assert!(run.outcome.reached_target(), "{}", run.outcome);
    assert_eq!(run.faults.len(), 1);
    assert_eq!(run.faults[0].fault.kind(), "exploding-grad-norm");
    assert_eq!(run.faults[0].action.kind(), "sanitize");
    // Sanitizing proceeds in place: no epochs were re-executed.
    assert_eq!(run.epochs_executed, run.result.epochs_run);
}

#[test]
fn persistent_faults_quarantine_within_the_watchdog_budget() {
    let registry = Registry::aibench();
    let persistent = [
        FaultKind::LossValue { value: f32::NAN },
        FaultKind::KernelPanic,
        FaultKind::ParamNan,
    ];
    for kind in persistent {
        let b = registry.get("DC-AI-C15").unwrap();
        let schedule = FaultSchedule::new(4).inject_persistent(2, kind);
        let sup = SupervisorConfig::default();
        let config = cfg(10);
        let run = supervised_run(b, 2, &config, &schedule, &sup);
        assert!(
            matches!(run.outcome, Outcome::Quarantined { .. }),
            "{kind:?}: expected quarantine, got {}",
            run.outcome
        );
        let budget = sup.epoch_budget_factor * config.max_epochs + 8;
        assert!(
            run.epochs_executed <= budget + 1,
            "{kind:?}: executed {} epochs against a budget of {budget}",
            run.epochs_executed
        );
    }
}

#[test]
fn kernel_panic_degrades_to_serial_and_recovers() {
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let registry = Registry::aibench();
    let b = registry.get("DC-AI-C15").unwrap();
    let schedule = FaultSchedule::new(6).inject(2, FaultKind::KernelPanic);
    let config = RunConfig {
        parallel: Some(ParallelConfig::with_threads(4)),
        ..cfg(40)
    };
    let run = supervised_run(b, 2, &config, &schedule, &SupervisorConfig::default());
    assert!(run.degraded_serial, "kernel panic must degrade to 1 thread");
    assert!(run.outcome.reached_target(), "{}", run.outcome);
    assert!(run
        .faults
        .iter()
        .any(|e| e.fault.kind() == "kernel-panic" && e.action.kind() == "rollback-serial"));
    // Degradation restores the ambient thread setting afterwards.
    ParallelConfig::from_env().install();
}

#[test]
fn rollback_skips_unreadable_snapshots() {
    let registry = Registry::aibench();
    let b = registry.get("DC-AI-C15").unwrap();
    // The newest snapshot is made unreadable at rollback time; recovery
    // must fall back to the next older one instead of dying or using it.
    let schedule = FaultSchedule::new(8)
        .inject(3, FaultKind::LoadFail)
        .inject(3, FaultKind::LossValue { value: f32::NAN });
    let run = supervised_run(b, 2, &cfg(40), &schedule, &SupervisorConfig::default());
    assert!(run.outcome.reached_target(), "{}", run.outcome);
    let rollback = run
        .faults
        .iter()
        .find(|e| e.action.kind() == "rollback")
        .expect("a rollback must be recorded");
    match rollback.action {
        aibench_fault::ActionTaken::RolledBack { to_epoch, .. } => {
            // Snapshots exist at epochs 1 and 2 when the fault fires at 3;
            // the injected read failure forces the epoch-1 fall-back.
            assert_eq!(
                to_epoch,
                Some(1),
                "must skip the unreadable newest snapshot"
            );
        }
        ref other => panic!("unexpected action {other:?}"),
    }
}

#[test]
fn detect_only_policy_quarantines_on_first_fault() {
    let registry = Registry::aibench();
    let b = registry.get("DC-AI-C16").unwrap();
    let schedule = FaultSchedule::new(2).inject(2, FaultKind::LossValue { value: f32::NAN });
    let sup = SupervisorConfig {
        policy: RecoveryPolicy::detect_only(),
        ..SupervisorConfig::default()
    };
    let run = supervised_run(b, 1, &cfg(10), &schedule, &sup);
    match run.outcome {
        Outcome::Quarantined {
            fault: TrainFault::NonFiniteLoss { epoch, .. },
        } => assert_eq!(epoch, 2),
        ref other => panic!("expected NaN quarantine, got {other}"),
    }
}

#[test]
fn seeded_schedules_replay_bit_for_bit() {
    let registry = Registry::aibench();
    let b = registry.get("DC-AI-C16").unwrap();
    let sup = SupervisorConfig::default();
    for schedule_seed in [1u64, 2, 3] {
        let schedule = FaultSchedule::seeded(schedule_seed, 5, 3);
        let a = supervised_run(b, 1, &cfg(12), &schedule, &sup);
        let b_run = supervised_run(b, 1, &cfg(12), &schedule, &sup);
        assert!(
            a.deterministic_eq(&b_run),
            "seeded schedule {schedule_seed} diverged: {} vs {}",
            a.fault_signature(),
            b_run.fault_signature()
        );
    }
}

/// Every [`TrainFault`] kind — the sequential eight, the four distributed
/// ones, and the three transport/storage kinds the chaos layer lifts —
/// must be exercised by at least one seeded scenario, and each must map
/// to its designed [`aibench_fault::ActionTaken`].
#[test]
fn every_fault_kind_maps_to_its_recovery_action() {
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let registry = Registry::aibench();
    let b = registry.get("DC-AI-C15").unwrap();
    let mut covered: BTreeMap<&'static str, BTreeSet<&'static str>> = BTreeMap::new();
    let mut absorb = |events: &[FaultEvent]| {
        for e in events {
            covered
                .entry(e.fault.kind())
                .or_default()
                .insert(e.action.kind());
        }
    };

    // The eight sequential kinds, one seeded scenario each.
    let sup = SupervisorConfig::default();
    let nan = FaultSchedule::new(1).inject(2, FaultKind::LossValue { value: f32::NAN });
    absorb(&supervised_run(b, 2, &cfg(20), &nan, &sup).faults);
    let spike = FaultSchedule::new(2).inject(3, FaultKind::LossValue { value: 1e12 });
    let spike_sup = SupervisorConfig {
        sentinels: SentinelConfig {
            loss_spike_warmup: 1,
            ..SentinelConfig::default()
        },
        ..SupervisorConfig::default()
    };
    absorb(&supervised_run(b, 2, &cfg(20), &spike, &spike_sup).faults);
    let param = FaultSchedule::new(3).inject(2, FaultKind::ParamNan);
    absorb(&supervised_run(b, 2, &cfg(20), &param, &sup).faults);
    let grad = FaultSchedule::new(4).inject(2, FaultKind::GradExplosion { scale: 1e12 });
    absorb(&supervised_run(b, 2, &cfg(20), &grad, &sup).faults);
    let panic = FaultSchedule::new(5).inject(2, FaultKind::KernelPanic);
    absorb(&supervised_run(b, 2, &cfg(20), &panic, &sup).faults);
    let mut sink = FailingSink::new(MemorySink::new()).fail_save_at(1);
    absorb(
        &supervised_run_with_sink(b, 2, &cfg(4), &FaultSchedule::empty(), &sup, &mut sink).faults,
    );
    let freeze = FaultSchedule::new(6).inject_persistent(1, FaultKind::EvalFreeze);
    let stall_sup = SupervisorConfig {
        sentinels: SentinelConfig {
            stall_window: Some(3),
            ..SentinelConfig::default()
        },
        ..SupervisorConfig::default()
    };
    absorb(&supervised_run(b, 2, &cfg(12), &freeze, &stall_sup).faults);
    let persistent =
        FaultSchedule::new(7).inject_persistent(2, FaultKind::LossValue { value: f32::NAN });
    let budget_sup = SupervisorConfig {
        max_recoveries: 1000,
        epoch_budget_factor: 1,
        ..SupervisorConfig::default()
    };
    absorb(&supervised_run(b, 2, &cfg(3), &persistent, &budget_sup).faults);

    // The four distributed kinds, one two-worker session, lifted into the
    // shared taxonomy via `FaultEvent::from_dist`.
    let factory = |s: u64| {
        b.build_data_parallel(s)
            .expect("DC-AI-C15 is data-parallel")
    };
    let dist = DistConfig {
        schedule: DistSchedule::empty()
            .inject(1, 1, 0, DistFaultKind::StragglerDelay { ticks: 2 })
            .inject(1, 2, 1, DistFaultKind::CorruptGradShard)
            .inject(2, 1, 1, DistFaultKind::LostContribution)
            .inject(2, 2, 1, DistFaultKind::WorkerDrop),
        ..DistConfig::with_world(2)
    };
    let params = RunParams {
        max_epochs: 2,
        eval_every: 1,
        snapshot_every: 0,
    };
    let group = run_data_parallel(&factory, 2, &|_| false, &params, &dist);
    let lifted: Vec<FaultEvent> = group.faults.iter().map(FaultEvent::from_dist).collect();
    absorb(&lifted);

    // The three transport/storage kinds, fired through one chaos soak:
    // a corrupt inbound frame (retransmitted), a mid-stream connection
    // reset (lease-resumed), and a torn checkpoint write (rolled back on
    // the load path). The soak's chaos log lifts into the same taxonomy.
    let chaos = aibench_chaos::ChaosSchedule::new(21)
        .inject(
            aibench_chaos::ChaosSite::ClientToServer,
            1,
            aibench_chaos::ChaosKind::BitFlip { bit: 65 },
        )
        .inject(
            aibench_chaos::ChaosSite::ServerToClient,
            4,
            aibench_chaos::ChaosKind::Reset,
        )
        .inject(
            aibench_chaos::ChaosSite::Store,
            0,
            aibench_chaos::ChaosKind::TornWrite { keep: 8 },
        );
    let soak = aibench_chaos::run_soak(
        &registry,
        &[
            aibench_serve::RunRequest::new("acme", "DC-AI-C15", 1, 3),
            aibench_serve::RunRequest::new("zeta", "DC-AI-C15", 2, 3),
        ],
        &chaos,
        aibench_chaos::SoakConfig::default(),
    );
    absorb(&soak.lifted_faults());

    let expected: &[(&str, &str)] = &[
        ("non-finite-loss", "rollback"),
        ("loss-spike", "rollback"),
        ("non-finite-param", "rollback"),
        ("exploding-grad-norm", "sanitize"),
        ("kernel-panic", "rollback-serial"),
        ("checkpoint-io", "retry-save"),
        ("stalled-progress", "quarantine"),
        ("budget-exhausted", "quarantine"),
        ("straggler-delay", "absorb-delay"),
        ("worker-drop", "exclude-reshard"),
        ("corrupt-grad-shard", "shard-quarantine"),
        ("lost-contribution", "rollback"),
        ("frame-corrupt", "retransmit"),
        ("connection-lost", "lease-resume"),
        ("store-corrupt", "rollback"),
    ];
    assert_eq!(expected.len(), TrainFault::KINDS.len());
    for kind in TrainFault::KINDS {
        let (_, action) = expected
            .iter()
            .find(|(k, _)| k == &kind)
            .unwrap_or_else(|| panic!("no expectation for kind `{kind}`"));
        let actions = covered
            .get(kind)
            .unwrap_or_else(|| panic!("kind `{kind}` never fired in any seeded scenario"));
        assert!(
            actions.contains(action),
            "kind `{kind}` recovered via {actions:?}, expected `{action}`"
        );
    }
    ParallelConfig::from_env().install();
}

#[test]
fn stalled_progress_is_opt_in_and_detected() {
    let registry = Registry::aibench();
    let b = registry.get("DC-AI-C15").unwrap();
    let schedule = FaultSchedule::new(3).inject_persistent(1, FaultKind::EvalFreeze);
    // Default config: no stall window, the frozen run just misses target.
    let default_run = supervised_run(b, 2, &cfg(8), &schedule, &SupervisorConfig::default());
    assert_eq!(default_run.outcome.kind(), "missed-target");
    // Opting in quarantines with a stalled-progress fault.
    let sup = SupervisorConfig {
        sentinels: SentinelConfig {
            stall_window: Some(3),
            ..SentinelConfig::default()
        },
        ..SupervisorConfig::default()
    };
    let run = supervised_run(b, 2, &cfg(20), &schedule, &sup);
    assert!(
        matches!(
            run.outcome,
            Outcome::Quarantined {
                fault: TrainFault::StalledProgress { .. }
            }
        ),
        "{}",
        run.outcome
    );
}

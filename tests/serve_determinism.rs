//! End-to-end guarantees of the benchmark-serving subsystem
//! (`aibench-serve`):
//!
//! * a fixed request trace replayed through the server produces the
//!   identical admission/preemption schedule and bitwise-identical
//!   per-session results at 1, 4, and 8 threads;
//! * a session preempted by a higher-priority arrival — parked through an
//!   `aibench-ckpt` snapshot and later resumed — finishes bitwise
//!   identical to the same session run without preemption, for both the
//!   CNN (DC-AI-C1) and attention (DC-AI-C14) trainers at 1 and 4
//!   threads;
//! * a tenant with a poisoned fault schedule is quarantined without
//!   perturbing a clean neighbor's bits;
//! * the full client path (TCP submit → progress stream → final record)
//!   delivers the same result bits the core computed;
//! * a client that disconnects mid-progress-stream detaches only its own
//!   delivery: the serve loop survives, the session completes, and a
//!   concurrent client's stream and result bits are unaffected.
//!
//! Tests that reconfigure the process-wide pool serialize on a mutex and
//! restore the environment's thread count afterwards (the same discipline
//! as `tests/dist_determinism.rs`).

use std::sync::Mutex;

use aibench::registry::Registry;
use aibench_fault::{FaultKind, FaultSchedule};
use aibench_parallel::ParallelConfig;
use aibench_serve::{run_trace, Event, RunRequest, ServeConfig};

/// Serializes pool reconfiguration across the test harness's threads.
static POOL_LOCK: Mutex<()> = Mutex::new(());

const PROBE: &str = "DC-AI-C15";

/// A mixed trace: two tenants, staggered arrivals, one priority preempt,
/// one poisoned session.
fn mixed_trace() -> Vec<(u64, RunRequest)> {
    vec![
        (0, RunRequest::new("acme", PROBE, 1, 3)),
        (0, RunRequest::new("acme", PROBE, 2, 3)),
        (0, RunRequest::new("zeta", PROBE, 3, 2)),
        (
            1,
            RunRequest::new("zeta", PROBE, 4, 2).with_faults(
                FaultSchedule::new(9).inject(1, FaultKind::LossValue { value: f32::NAN }),
            ),
        ),
        (3, RunRequest::new("ops", PROBE, 5, 2).with_priority(7)),
    ]
}

#[test]
fn fixed_trace_is_bitwise_identical_across_thread_counts() {
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let registry = Registry::aibench();
    let trace = mixed_trace();
    let mut baseline = None;
    for threads in [1usize, 4, 8] {
        ParallelConfig::with_threads(threads).install();
        let report = run_trace(&registry, ServeConfig::default(), &trace);
        match &baseline {
            None => baseline = Some(report),
            Some(expect) => {
                assert_eq!(
                    expect.schedule_signature(),
                    report.schedule_signature(),
                    "{threads}-thread schedule diverged"
                );
                assert!(
                    expect.deterministic_eq(&report),
                    "{threads}-thread serve replay diverged from serial"
                );
            }
        }
    }
    ParallelConfig::from_env().install();
}

/// Runs `code` solo, then inside a trace where a high-priority arrival
/// preempts it mid-run, and asserts the preempted session's final result
/// is bitwise identical to the uninterrupted one.
fn assert_preemption_is_bitwise_neutral(code: &str, max_epochs: usize) {
    let registry = Registry::aibench();
    let solo = run_trace(
        &registry,
        ServeConfig {
            budget: 1,
            ..ServeConfig::default()
        },
        &[(0, RunRequest::new("low", code, 1, max_epochs))],
    );
    let preempted = run_trace(
        &registry,
        ServeConfig {
            budget: 1,
            ..ServeConfig::default()
        },
        &[
            (0, RunRequest::new("low", code, 1, max_epochs)),
            (1, RunRequest::new("high", PROBE, 2, 1).with_priority(9)),
        ],
    );
    let sig = preempted.schedule_signature();
    assert!(sig.contains("s0:park@"), "no preemption happened: {sig}");
    assert!(sig.contains("s0:resume@"), "victim never resumed: {sig}");
    assert!(
        preempted.sessions[0]
            .done
            .result
            .deterministic_eq(&solo.sessions[0].done.result),
        "{code}: preempted-then-resumed differs from uninterrupted \
         ({} epochs to {:.9} vs {} epochs to {:.9})",
        preempted.sessions[0].done.result.epochs_run,
        preempted.sessions[0].done.result.final_quality,
        solo.sessions[0].done.result.epochs_run,
        solo.sessions[0].done.result.final_quality,
    );
}

#[test]
fn preempted_cnn_session_is_bitwise_identical_to_uninterrupted() {
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for threads in [1usize, 4] {
        ParallelConfig::with_threads(threads).install();
        assert_preemption_is_bitwise_neutral("DC-AI-C1", 3);
    }
    ParallelConfig::from_env().install();
}

#[test]
fn preempted_attention_session_is_bitwise_identical_to_uninterrupted() {
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for threads in [1usize, 4] {
        ParallelConfig::with_threads(threads).install();
        assert_preemption_is_bitwise_neutral("DC-AI-C14", 4);
    }
    ParallelConfig::from_env().install();
}

#[test]
fn poisoned_tenant_is_quarantined_without_perturbing_neighbors() {
    let registry = Registry::aibench();
    let poisoned =
        FaultSchedule::new(5).inject_persistent(1, FaultKind::LossValue { value: f32::NAN });
    let both = run_trace(
        &registry,
        ServeConfig::default(),
        &[
            (
                0,
                RunRequest::new("chaos", PROBE, 1, 6).with_faults(poisoned),
            ),
            (0, RunRequest::new("calm", PROBE, 2, 3)),
        ],
    );
    let solo = run_trace(
        &registry,
        ServeConfig::default(),
        &[(0, RunRequest::new("calm", PROBE, 2, 3))],
    );
    assert!(
        both.sessions[0]
            .done
            .outcome_signature
            .starts_with("quarantined"),
        "poisoned session: {}",
        both.sessions[0].done.outcome_signature
    );
    assert_eq!(both.sessions[1].done.fault_signature, "clean");
    assert!(
        both.sessions[1]
            .done
            .result
            .deterministic_eq(&solo.sessions[0].done.result),
        "clean neighbor's bits changed when served next to a poisoned run"
    );
}

#[test]
fn tcp_round_trip_delivers_the_core_result() {
    let registry = Registry::aibench();
    // What the core would compute for this request alone.
    let expected = run_trace(
        &registry,
        ServeConfig::default(),
        &[(0, RunRequest::new("acme", PROBE, 7, 2))],
    );

    let (addr_tx, addr_rx) = std::sync::mpsc::channel();
    let server = std::thread::spawn(move || {
        let registry = Registry::aibench();
        aibench_serve::tcp::serve_sessions(
            &registry,
            ServeConfig::default(),
            "127.0.0.1:0",
            1,
            move |addr| addr_tx.send(addr).unwrap(),
        )
    });
    let addr = addr_rx.recv().expect("server never bound");
    let (events, done) =
        aibench_serve::tcp::submit_and_wait(addr, RunRequest::new("acme", PROBE, 7, 2))
            .expect("client round trip");
    assert_eq!(server.join().unwrap().unwrap(), 1);

    assert!(
        done.result
            .deterministic_eq(&expected.sessions[0].done.result),
        "result crossed TCP with different bits"
    );
    assert!(events
        .iter()
        .any(|e| matches!(e.event, Event::Admitted { .. })));
    let epochs: Vec<usize> = events
        .iter()
        .filter_map(|e| match e.event {
            Event::Epoch { epoch, .. } => Some(epoch),
            _ => None,
        })
        .collect();
    assert_eq!(epochs, vec![1, 2], "progress stream must cover every epoch");
}

/// Regression: a client disconnecting mid-progress-stream must detach
/// only its own delivery. The serve loop keeps running, the abandoned
/// session still completes, and a concurrent client's stream and final
/// bits are untouched.
#[test]
fn dead_client_mid_stream_does_not_abort_the_serve_loop() {
    use aibench_serve::wire::{read_frame, write_frame, ClientMsg, ServerMsg};

    let registry = Registry::aibench();
    let survivor_request = RunRequest::new("zeta", PROBE, 7, 3);
    let expected = run_trace(
        &registry,
        ServeConfig::default(),
        &[(0, survivor_request.clone())],
    );

    let (addr_tx, addr_rx) = std::sync::mpsc::channel();
    let server = std::thread::spawn(move || {
        let registry = Registry::aibench();
        aibench_serve::tcp::serve_sessions(
            &registry,
            ServeConfig::default(),
            "127.0.0.1:0",
            2,
            move |addr| addr_tx.send(addr).unwrap(),
        )
    });
    let addr = addr_rx.recv().expect("server never bound");

    // The doomed client: submit a longer session, read until the stream
    // is demonstrably live, then drop the socket mid-stream.
    {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        let doomed = RunRequest::new("acme", PROBE, 5, 4);
        write_frame(&mut stream, &ClientMsg::Submit(doomed).to_bytes()).unwrap();
        loop {
            let payload = read_frame(&mut stream)
                .expect("stream readable")
                .expect("server open");
            if matches!(
                ServerMsg::from_bytes(&payload).expect("valid frame"),
                ServerMsg::Progress(_)
            ) {
                break;
            }
        }
    }

    // The survivor: a full round trip while the doomed session is still
    // running (or finishing) next to it.
    let (events, done) =
        aibench_serve::tcp::submit_and_wait(addr, survivor_request).expect("survivor round trip");
    // Both sessions count as served: the abandoned one completed too.
    assert_eq!(server.join().unwrap().unwrap(), 2);

    assert!(
        done.result
            .deterministic_eq(&expected.sessions[0].done.result),
        "the dead neighbor changed the survivor's bits"
    );
    let epochs: Vec<usize> = events
        .iter()
        .filter_map(|e| match e.event {
            Event::Epoch { epoch, .. } => Some(epoch),
            _ => None,
        })
        .collect();
    assert_eq!(
        epochs,
        vec![1, 2, 3],
        "the survivor's stream must be complete and in order"
    );
}

//! End-to-end guarantees of the elastic data-parallel engine
//! (`aibench-dist`), run through the suite-level entry point:
//!
//! * the same seed + world size reproduces the *bitwise identical* run at
//!   1, 4, and 8 threads — thread count is an execution detail;
//! * a single-worker group under the empty schedule is bitwise identical
//!   to the sequential runner (`run_to_quality`);
//! * a scheduled worker drop replays identically, recovers by
//!   exclude-and-reshard, and the surviving group still reaches the
//!   quality target;
//! * elastic join/leave at epoch boundaries resumes bitwise-identically
//!   from a group snapshot after an interruption.
//!
//! Tests that reconfigure the process-wide pool serialize on a mutex and
//! restore the environment's thread count afterwards (the same discipline
//! as `tests/fault_recovery.rs`).

use std::sync::Mutex;

use aibench::distributed::run_distributed_to_quality;
use aibench::registry::{Benchmark, Registry};
use aibench::runner::{run_to_quality, RunConfig};
use aibench_ckpt::MemorySink;
use aibench_dist::{
    run_data_parallel_resumable, DistConfig, DistFaultKind, DistSchedule, MembershipPlan, RunParams,
};
use aibench_parallel::ParallelConfig;

/// Serializes pool reconfiguration across the test harness's threads.
static POOL_LOCK: Mutex<()> = Mutex::new(());

fn probe(registry: &Registry) -> &Benchmark {
    registry.get("DC-AI-C15").expect("spatial transformer")
}

fn cfg(max_epochs: usize) -> RunConfig {
    RunConfig {
        max_epochs,
        eval_every: 1,
        ..RunConfig::default()
    }
}

#[test]
fn same_seed_and_world_is_bitwise_identical_across_thread_counts() {
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let registry = Registry::aibench();
    let b = probe(&registry);
    let dist = DistConfig::with_world(2);
    let mut baseline = None;
    for threads in [1usize, 4, 8] {
        let config = RunConfig {
            parallel: Some(ParallelConfig::with_threads(threads)),
            ..cfg(3)
        };
        let report = run_distributed_to_quality(b, 7, &config, &dist).expect("supported");
        match &baseline {
            None => baseline = Some(report),
            Some(expect) => assert!(
                expect.dist.deterministic_eq(&report.dist),
                "{threads}-thread distributed run differs from serial: \
                 quality {:.9} vs {:.9}",
                expect.dist.final_quality,
                report.dist.final_quality
            ),
        }
    }
    ParallelConfig::from_env().install();
}

#[test]
fn single_worker_group_is_bitwise_identical_to_the_sequential_runner() {
    let registry = Registry::aibench();
    let b = probe(&registry);
    let config = cfg(30);
    let plain = run_to_quality(b, 1, &config);
    let report =
        run_distributed_to_quality(b, 1, &config, &DistConfig::with_world(1)).expect("supported");
    assert!(
        plain.deterministic_eq(&report.result),
        "1-worker group diverged from the sequential runner: \
         {} epoch(s) to {:.9} vs {} epoch(s) to {:.9}",
        plain.epochs_run,
        plain.final_quality,
        report.result.epochs_run,
        report.result.final_quality
    );
    assert!(report.dist.faults.is_empty());
    assert_eq!(report.dist.reshards, 0);
}

#[test]
fn worker_drop_replays_identically_and_still_reaches_target() {
    let registry = Registry::aibench();
    let b = probe(&registry);
    let config = cfg(40);
    let dist = DistConfig {
        schedule: DistSchedule::empty().inject(2, 1, 1, DistFaultKind::WorkerDrop),
        ..DistConfig::with_world(2)
    };
    let first = run_distributed_to_quality(b, 2, &config, &dist).expect("supported");
    let second = run_distributed_to_quality(b, 2, &config, &dist).expect("supported");
    assert!(
        first.dist.deterministic_eq(&second.dist),
        "same seed + schedule diverged:\n  {:?}\n  {:?}",
        first.dist.fault_signatures(),
        second.dist.fault_signatures()
    );
    assert!(
        first
            .dist
            .fault_signatures()
            .iter()
            .any(|s| s.contains("worker-drop>exclude-reshard")),
        "expected an exclude-and-reshard recovery, got {:?}",
        first.dist.fault_signatures()
    );
    assert!(first.dist.reshards >= 1);
    assert!(
        first.dist.world_trace.iter().any(|&(_, w)| w == 1),
        "the group never shrank: {:?}",
        first.dist.world_trace
    );
    assert!(
        first.result.converged(),
        "the surviving worker missed the target: quality {:.6} after {} epoch(s)",
        first.result.final_quality,
        first.result.epochs_run
    );
    assert!(!first.dist.aborted);
}

#[test]
fn elastic_membership_resumes_bitwise_identically_from_snapshot() {
    // Driven through the engine API with a never-met target: DC-AI-C15
    // reaches its quality target within a couple of epochs, which would
    // end the run before the membership plan plays out.
    let registry = Registry::aibench();
    let b = probe(&registry);
    let factory = |s: u64| {
        b.build_data_parallel(s)
            .expect("DC-AI-C15 is data-parallel")
    };
    let never = |_q: f64| false;
    let membership = MembershipPlan::empty().join(3, 2).leave(5, 1);
    let dist = DistConfig {
        membership,
        ..DistConfig::with_world(2)
    };
    let full = RunParams {
        max_epochs: 8,
        eval_every: 1,
        snapshot_every: 1,
    };

    let mut scratch = MemorySink::new();
    let uninterrupted =
        run_data_parallel_resumable(&factory, 3, &never, &full, &dist, &mut scratch);
    assert_eq!(
        uninterrupted.world_trace,
        vec![
            (1, 2),
            (2, 2),
            (3, 3),
            (4, 3),
            (5, 2),
            (6, 2),
            (7, 2),
            (8, 2)
        ],
        "the membership plan did not play out at epoch boundaries"
    );

    // Interrupt after epoch 4 (mid-plan: the join has happened, the leave
    // has not), then resume from the sink's newest snapshot.
    let half = RunParams {
        max_epochs: 4,
        ..full
    };
    let mut sink = MemorySink::new();
    let halted = run_data_parallel_resumable(&factory, 3, &never, &half, &dist, &mut sink);
    assert_eq!(halted.epochs_run, 4);
    assert_eq!(halted.resumed_from, None);
    assert_eq!(halted.world_trace, uninterrupted.world_trace[..4]);

    let resumed = run_data_parallel_resumable(&factory, 3, &never, &full, &dist, &mut sink);
    assert_eq!(resumed.resumed_from, Some(4));
    assert!(
        uninterrupted.deterministic_eq(&resumed),
        "resumed run diverged from the uninterrupted one: \
         quality {:.9} vs {:.9}, world {:?} vs {:?}",
        uninterrupted.final_quality,
        resumed.final_quality,
        uninterrupted.world_trace,
        resumed.world_trace
    );
}

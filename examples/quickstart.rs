//! Quickstart: run one AIBench component benchmark — the Spatial
//! Transformer (DC-AI-C15), the suite's fastest — through an entire
//! training session to its quality target.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use aibench::registry::Registry;
use aibench::runner::{run_to_quality, RunConfig};

fn main() {
    let registry = Registry::aibench();
    let benchmark = registry.get("DC-AI-C15").expect("registered benchmark");
    println!("benchmark: {} ({})", benchmark.task, benchmark.id);
    println!("algorithm: {}", benchmark.algorithm);
    println!("dataset:   {}", benchmark.dataset);
    println!("target:    {} {}", benchmark.metric, benchmark.target);
    println!();

    let result = run_to_quality(benchmark, 1, &RunConfig::default());
    for (epoch, quality) in &result.quality_trace {
        println!("epoch {epoch:>2}: {} = {quality:.3}", benchmark.metric);
    }
    println!();
    match result.epochs_to_target {
        Some(e) => println!(
            "converged in {e} epochs ({:.1}s wall time)",
            result.wall_seconds
        ),
        None => println!(
            "did not converge within the cap (final {:.3})",
            result.final_quality
        ),
    }
}

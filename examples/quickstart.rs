//! Quickstart: run one AIBench component benchmark — the Spatial
//! Transformer (DC-AI-C15), the suite's fastest — through an entire
//! training session to its quality target.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use aibench::ckpt::{run_to_quality_resumable, run_until_killed};
use aibench::registry::Registry;
use aibench::runner::{run_to_quality, RunConfig};
use aibench_ckpt::{CheckpointSink, MemorySink};

fn main() {
    let registry = Registry::aibench();
    let benchmark = registry.get("DC-AI-C15").expect("registered benchmark");
    println!("benchmark: {} ({})", benchmark.task, benchmark.id);
    println!("algorithm: {}", benchmark.algorithm);
    println!("dataset:   {}", benchmark.dataset);
    println!("target:    {} {}", benchmark.metric, benchmark.target);
    println!();

    let result = run_to_quality(benchmark, 1, &RunConfig::default());
    for (epoch, quality) in &result.quality_trace {
        println!("epoch {epoch:>2}: {} = {quality:.3}", benchmark.metric);
    }
    println!();
    match result.epochs_to_target {
        Some(e) => println!(
            "converged in {e} epochs ({:.1}s wall time)",
            result.wall_seconds
        ),
        None => println!(
            "did not converge within the cap (final {:.3})",
            result.final_quality
        ),
    }

    // Interrupt and resume: checkpoint every epoch, kill the session after
    // one epoch, then resume from the snapshot. The resumed result is
    // bitwise identical to the uninterrupted run above.
    println!();
    println!("-- interrupt/resume demo --");
    let config = RunConfig {
        checkpoint_every: 1,
        ..RunConfig::default()
    };
    let mut sink = MemorySink::new(); // DirSink persists across processes
    let killed = run_until_killed(benchmark, 1, &config, &mut sink, 1).expect("checkpoint save");
    assert!(killed.is_none(), "session was killed after one epoch");
    println!(
        "session killed; {} checkpoint(s) in the sink",
        sink.epochs().len()
    );
    let resumed =
        run_to_quality_resumable(benchmark, 1, &config, &mut sink).expect("checkpoint save");
    println!(
        "resumed from epoch {:?}, finished at epoch {}",
        resumed.resumed_from, resumed.epochs_run
    );
    assert!(
        result.deterministic_eq(&resumed),
        "resumed run diverged from the uninterrupted one"
    );
    println!("resumed result is bitwise identical to the uninterrupted run");
}

//! Workload characterization: the model characteristics (parameters,
//! FLOPs) and simulated micro-architectural profile of every benchmark,
//! plus each benchmark's runtime breakdown — the Section 5.2/5.5 pipeline
//! in one binary.
//!
//! ```sh
//! cargo run --release --example characterize
//! ```

use aibench::characterize::{microarch_vectors, model_characteristics};
use aibench::registry::Registry;
use aibench_analysis::TextTable;
use aibench_gpusim::{DeviceConfig, Simulator};

fn main() {
    let registry = Registry::aibench();

    println!("== model characteristics (full-scale specs) ==");
    let mut t = TextTable::new(vec![
        "benchmark".into(),
        "algorithm".into(),
        "params (M)".into(),
        "M-FLOPs".into(),
    ]);
    for c in model_characteristics(&registry) {
        t.row(vec![
            c.code,
            c.algorithm,
            format!("{:.3}", c.params_m),
            format!("{:.2}", c.mflops),
        ]);
    }
    print!("{}", t.render());

    println!();
    println!("== simulated micro-architectural metrics (TITAN Xp model) ==");
    let mut t = TextTable::new(vec![
        "benchmark".into(),
        "occupancy".into(),
        "ipc_eff".into(),
        "dram_util".into(),
        "top category".into(),
    ]);
    let sim = Simulator::new(DeviceConfig::titan_xp());
    for ((code, m), b) in microarch_vectors(&registry, DeviceConfig::titan_xp())
        .into_iter()
        .zip(registry.benchmarks())
    {
        let profile = sim.profile(&b.spec());
        t.row(vec![
            code,
            format!("{:.3}", m.achieved_occupancy),
            format!("{:.3}", m.ipc_efficiency),
            format!("{:.3}", m.dram_utilization),
            format!(
                "{} ({:.0}%)",
                profile.categories[0].category,
                100.0 * profile.categories[0].share
            ),
        ]);
    }
    print!("{}", t.render());
}

//! Subset selection (Section 5.4): measure run-to-run variation, cluster
//! the workload-characterization space, and pick the minimum subset.
//!
//! With `--paper-variation`, the selector uses the paper's Table-5
//! variation numbers (the default measures our scaled benchmarks, which
//! takes a few minutes).
//!
//! ```sh
//! cargo run --release --example subset_selection -- --paper-variation
//! ```

use aibench::characterize::combined_features;
use aibench::registry::Registry;
use aibench::repeatability::measure_variation;
use aibench::runner::RunConfig;
use aibench::subset::{select_subset, SubsetCandidate};
use aibench_gpusim::DeviceConfig;

/// One training session per benchmark: epochs to target (cap = 45).
fn measured_epochs(registry: &Registry) -> std::collections::BTreeMap<String, f64> {
    let cfg = RunConfig {
        max_epochs: 45,
        eval_every: 1,
        ..RunConfig::default()
    };
    registry
        .benchmarks()
        .iter()
        .map(|b| {
            let res = aibench::runner::run_to_quality(b, 1, &cfg);
            (
                b.id.code().to_string(),
                res.epochs_to_target.unwrap_or(cfg.max_epochs) as f64,
            )
        })
        .collect()
}

fn main() {
    let use_paper = std::env::args().any(|a| a == "--paper-variation");
    let registry = Registry::aibench();
    let epochs = measured_epochs(&registry);
    let features = combined_features(&registry, DeviceConfig::titan_xp(), &epochs);

    let candidates: Vec<SubsetCandidate> = registry
        .benchmarks()
        .iter()
        .zip(&features)
        .map(|(b, (_, f))| {
            let variation_pct = if use_paper {
                b.paper.variation_pct
            } else {
                let cfg = RunConfig {
                    max_epochs: 45,
                    eval_every: 1,
                    ..RunConfig::default()
                };
                let rep = measure_variation(b, 4, &cfg);
                println!(
                    "{}: measured variation {:?}",
                    b.id.code(),
                    rep.variation_pct
                );
                rep.variation_pct
            };
            SubsetCandidate {
                code: b.id.code().to_string(),
                has_accepted_metric: b.has_accepted_metric,
                variation_pct,
                features: f.clone(),
            }
        })
        .collect();

    let selection = select_subset(&candidates, 3, 42);
    println!();
    println!("selected subset: {:?}", selection.chosen);
    println!("(paper's subset: DC-AI-C1 Image Classification, DC-AI-C9 Object");
    println!(" Detection, DC-AI-C16 Learning-to-Rank)");
}

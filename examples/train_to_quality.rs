//! Train any registered benchmark to its quality target:
//!
//! ```sh
//! cargo run --release --example train_to_quality -- DC-AI-C9 [seed]
//! ```
//!
//! Codes: DC-AI-C1 .. DC-AI-C17, MLPerf-IC, MLPerf-OD-Heavy,
//! MLPerf-OD-Light, MLPerf-Trans-Rec, MLPerf-Trans-NonRec, MLPerf-Rec,
//! MLPerf-RL.

use aibench::registry::Registry;
use aibench::runner::{run_to_quality, RunConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let code = args.next().unwrap_or_else(|| "DC-AI-C1".to_string());
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);

    let registry = Registry::all();
    let Some(benchmark) = registry.get(&code) else {
        eprintln!("unknown benchmark code {code:?}; available:");
        for b in registry.benchmarks() {
            eprintln!("  {} — {}", b.id.code(), b.task);
        }
        std::process::exit(2);
    };

    println!("training {} ({}) with seed {seed}", benchmark.task, code);
    let result = run_to_quality(benchmark, seed, &RunConfig::default());
    for ((epoch, quality), loss) in result.quality_trace.iter().zip(&result.loss_trace) {
        println!(
            "epoch {epoch:>2}: loss {loss:>8.4}  {} = {quality:.4}",
            benchmark.metric
        );
    }
    match result.epochs_to_target {
        Some(e) => println!(
            "reached {} {} in {e} epochs",
            benchmark.metric, benchmark.target
        ),
        None => println!(
            "cap reached; final {} = {:.4}",
            benchmark.metric, result.final_quality
        ),
    }
}
